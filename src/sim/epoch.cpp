#include "sim/epoch.h"

#include <algorithm>

#include "common/parallel.h"
#include "obs/profile.h"
#include "sim/event_queue.h"

namespace vod::sim {

std::size_t EpochExecutor::run(EventQueue& queue, SimTime now,
                               std::vector<EpochEvent>& batch,
                               std::size_t shards) {
  if (shards == 0) shards = 1;
  ++epochs_;
  // Partition: sharded events bucket by shard_of (keeping scheduling order
  // inside each bucket); serial events keep scheduling order outright.
  if (shard_members_.size() < shards) shard_members_.resize(shards);
  for (std::vector<std::uint32_t>& members : shard_members_) members.clear();
  serial_members_.clear();
  std::size_t sharded_total = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].sharded) {
      shard_members_[shard_of(batch[i].affinity, shards)].push_back(
          static_cast<std::uint32_t>(i));
      ++sharded_total;
    } else {
      serial_members_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::size_t executed = 0;
  if (sharded_total > 0) {
    if (buffers_.size() < shards) buffers_.resize(shards);
    // Liveness resolves up-front on the orchestrating thread (workers never
    // touch the queue): every event taken here WILL run — the instant's
    // serial events fire after the phase, too late to cancel one (see the
    // header contract).
    std::size_t live_total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      std::vector<std::uint32_t>& members = shard_members_[s];
      std::erase_if(members, [&](std::uint32_t idx) {
        return !queue.take_epoch_event(batch[idx].sequence);
      });
      live_total += members.size();
    }
    if (live_total > 0) {
      // Parallel-core shape: occupied shards and the population skew
      // between them, per epoch.  Both derive from the partition alone —
      // identical at any worker width.
      std::size_t occupied = 0;
      std::size_t max_members = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t n = shard_members_[s].size();
        if (n == 0) continue;
        ++occupied;
        max_members = std::max(max_members, n);
      }
      occupancy_hist_.observe(static_cast<double>(occupied));
      imbalance_hist_.observe(static_cast<double>(max_members) *
                              static_cast<double>(occupied) /
                              static_cast<double>(live_total));
    }
    {
      // Parallel phase over the fixed shard partition.  The fork decision
      // weighs the live event count against the grain; the partition
      // itself never depends on it.  Handlers write only their own shard's
      // EffectBuffer and affinity-owned state.
      VOD_PROFILE_SCOPE("epoch.parallel_phase");
      // vodlint: parallel-region
      parallel_for_items(shards, live_total,
                         [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          for (const std::uint32_t idx : shard_members_[s]) {
            batch[idx].sharded(now, buffers_[s]);
          }
        }
      });
    }
    {
      // Barrier + deterministic merge: effects apply in shard-index order,
      // within a shard in the order the handlers deferred them.
      VOD_PROFILE_SCOPE("epoch.merge");
      for (std::size_t s = 0; s < shards; ++s) buffers_[s].run_all(now);
    }
    executed += live_total;
    sharded_events_ += live_total;
  }
  // The instant's serial events, in scheduling order.  Liveness is checked
  // per event so a serial event cancelling a later same-instant serial
  // event behaves exactly as the one-at-a-time loop did.
  for (const std::uint32_t idx : serial_members_) {
    if (!queue.take_epoch_event(batch[idx].sequence)) continue;
    batch[idx].callback(now);
    ++executed;
    ++serial_events_;
  }
  return executed;
}

}  // namespace vod::sim
