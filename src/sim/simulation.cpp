#include "sim/simulation.h"

#include <stdexcept>
#include <utility>

#include "common/contract.h"

namespace vod::sim {

std::size_t Simulation::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && queue_.run_next()) ++executed;
  return executed;
}

std::size_t Simulation::run_until(SimTime until) {
  std::size_t executed = 0;
  while (auto next = queue_.next_time()) {
    if (*next > until) break;
    queue_.run_next();
    ++executed;
  }
  // Advance the clock to `until` with a no-op event so `now()` reflects the
  // requested horizon even when the queue drained early.
  if (queue_.now() < until) {
    queue_.schedule(until, [](SimTime) {});
    queue_.run_next();
  }
  return executed;
}

PeriodicTask::PeriodicTask(Simulation& sim, Duration period,
                           std::function<void(SimTime)> body)
    : sim_(sim), period_(period), body_(std::move(body)) {
  require(!(period_.seconds() <= 0.0), "PeriodicTask: period must be positive");
  require(body_, "PeriodicTask: empty body");
}

void PeriodicTask::start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_in(period_, [this](SimTime t) { fire(t); });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.queue().cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicTask::fire(SimTime now) {
  if (!running_) return;
  body_(now);
  // The body may have stopped the task.
  if (running_) {
    pending_ = sim_.schedule_in(period_, [this](SimTime t) { fire(t); });
  }
}

}  // namespace vod::sim
