#include "sim/simulation.h"

#include <stdexcept>
#include <utility>

#include "common/contract.h"
#include "obs/series.h"

namespace vod::sim {

namespace {

/// Series pump (DESIGN.md §16): takes every cadence tick up to the next
/// instant BEFORE that instant executes, so a sample at tick T reflects
/// exactly the events strictly before T regardless of stepping mode or
/// worker width.  With no recorder installed this is the one load+branch
/// the determinism contract allows.
inline void pump_series(const EventQueue& queue) {
  if (obs::TimeSeriesRecorder* series = obs::series_sink()) {
    if (const auto next = queue.next_time()) series->on_instant(*next);
  }
}

}  // namespace

namespace {

// vodlint:allow(shared-mutable-global: the one stepping-config knob — installed from single-threaded orchestration only, same contract as the parallel runtime it configures)
SimulationConfig& config_slot() {
  // vodlint:allow(shared-mutable-global: single doorway, see above)
  static SimulationConfig instance;
  return instance;
}

}  // namespace

void set_simulation_config(const SimulationConfig& config) {
  config_slot() = config;
  set_parallel_config(config.parallel);
}

const SimulationConfig& simulation_config() { return config_slot(); }

std::size_t Simulation::run(std::size_t max_events) {
  const SimulationConfig& config = simulation_config();
  if (!config.epoch_barrier) {
    std::size_t executed = 0;
    while (executed < max_events) {
      pump_series(queue_);
      if (!queue_.run_next()) break;
      ++executed;
    }
    return executed;
  }
  std::size_t executed = 0;
  while (executed < max_events) {
    pump_series(queue_);
    if (queue_.pop_epoch(epoch_batch_) == 0) break;
    executed += executor_.run(queue_, queue_.now(), epoch_batch_,
                              config.epoch_shards);
  }
  return executed;
}

std::size_t Simulation::run_until(SimTime until) {
  const SimulationConfig& config = simulation_config();
  std::size_t executed = 0;
  while (auto next = queue_.next_time()) {
    if (*next > until) break;
    pump_series(queue_);
    if (config.epoch_barrier) {
      if (queue_.pop_epoch(epoch_batch_) == 0) break;
      executed += executor_.run(queue_, queue_.now(), epoch_batch_,
                                config.epoch_shards);
    } else {
      queue_.run_next();
      ++executed;
    }
  }
  // Advance the clock to `until` with a no-op event so `now()` reflects the
  // requested horizon even when the queue drained early.  The pump fires
  // first so series ticks <= `until` are flushed against the final state.
  if (queue_.now() < until) {
    queue_.schedule(until, [](SimTime) {});
    pump_series(queue_);
    queue_.run_next();
  }
  return executed;
}

PeriodicTask::PeriodicTask(Simulation& sim, Duration period,
                           std::function<void(SimTime)> body)
    : sim_(sim), period_(period), body_(std::move(body)) {
  require(!(period_.seconds() <= 0.0), "PeriodicTask: period must be positive");
  require(body_, "PeriodicTask: empty body");
}

void PeriodicTask::start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_in(period_, [this](SimTime t) { fire(t); });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.queue().cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicTask::fire(SimTime now) {
  if (!running_) return;
  body_(now);
  // The body may have stopped the task.
  if (running_) {
    pending_ = sim_.schedule_in(period_, [this](SimTime t) { fire(t); });
  }
}

}  // namespace vod::sim
