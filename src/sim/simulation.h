// Simulation driver.
//
// Owns the event queue and the simulated clock, and provides the run-loop
// variants the benches and tests need (run to exhaustion, run until a time,
// run a bounded number of events).  Also provides PeriodicTask, the building
// block for the SNMP poller and the VRA's continuous re-evaluation.
#pragma once

#include <functional>
#include <limits>

#include "common/sim_time.h"
#include "sim/event_queue.h"

namespace vod::sim {

/// The top-level simulation context.  Components hold a reference to it and
/// schedule their own events.
class Simulation {
 public:
  [[nodiscard]] SimTime now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }

  /// Schedules `callback` after `delay` from now.
  EventHandle schedule_in(Duration delay, EventQueue::Callback callback) {
    return queue_.schedule(now() + delay, std::move(callback));
  }

  /// Schedules `callback` at the absolute time `when`.
  EventHandle schedule_at(SimTime when, EventQueue::Callback callback) {
    return queue_.schedule(when, std::move(callback));
  }

  /// Runs every pending event (including ones scheduled while running).
  /// Returns the number of events executed.  `max_events` guards against
  /// runaway self-rescheduling loops.
  std::size_t run(std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  /// Runs events with time <= `until`; the clock ends at exactly `until`
  /// even if the queue drains earlier.
  std::size_t run_until(SimTime until);

 private:
  EventQueue queue_;
};

/// A task that re-fires at a fixed period until stopped.  The callback runs
/// first at `start + period` (matching an SNMP poller that reports at the
/// end of each interval).
class PeriodicTask {
 public:
  /// `body` receives the firing time; `period` must be positive.
  PeriodicTask(Simulation& sim, Duration period,
               std::function<void(SimTime)> body);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void fire(SimTime now);

  Simulation& sim_;
  Duration period_;
  std::function<void(SimTime)> body_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace vod::sim
