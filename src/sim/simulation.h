// Simulation driver.
//
// Owns the event queue and the simulated clock, and provides the run-loop
// variants the benches and tests need (run to exhaustion, run until a time,
// run a bounded number of events).  Also provides PeriodicTask, the building
// block for the SNMP poller and the VRA's continuous re-evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/parallel.h"
#include "common/sim_time.h"
#include "sim/epoch.h"
#include "sim/event_queue.h"

namespace vod::sim {

/// Process-wide stepping/parallelism configuration: the ONE knob set.
/// Benches and tests build this (from --threads flags or fixtures) and hand
/// it to set_simulation_config(), which installs `parallel` into the
/// fork-join runtime — no call site hard-codes its own min_fork_items.
/// The defaults reproduce the serial simulator byte-for-byte: workers 1,
/// production grain, one-event-at-a-time stepping.
struct SimulationConfig {
  ParallelConfig parallel{};
  /// When true, Simulation::run/run_until step in epoch batches: all
  /// same-instant events pop together, sharded events fan out over the
  /// fixed shard partition, effects merge at the barrier (sim/epoch.h).
  bool epoch_barrier = false;
  /// Fixed shard count for the parallel phase — part of the *semantic*
  /// configuration (the partition is affinity % epoch_shards), so it is
  /// deliberately independent of `parallel.workers`: any width processes
  /// the same shards in the same merge order.
  std::size_t epoch_shards = 64;
};

/// Installs the process-wide stepping config (and its ParallelConfig into
/// the fork-join runtime).  Same contract as set_parallel_config: call only
/// from single-threaded orchestration.  set_simulation_config({}) restores
/// the serial defaults.
void set_simulation_config(const SimulationConfig& config);

[[nodiscard]] const SimulationConfig& simulation_config();

/// The top-level simulation context.  Components hold a reference to it and
/// schedule their own events.
class Simulation {
 public:
  [[nodiscard]] SimTime now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }

  /// Schedules `callback` after `delay` from now.
  EventHandle schedule_in(Duration delay, EventQueue::Callback callback) {
    return queue_.schedule(now() + delay, std::move(callback));
  }

  /// Schedules `callback` at the absolute time `when`.
  EventHandle schedule_at(SimTime when, EventQueue::Callback callback) {
    return queue_.schedule(when, std::move(callback));
  }

  /// Sharded-event variants: `handler` runs in the parallel phase of its
  /// instant under epoch-barrier stepping (serial-inline otherwise), with
  /// writes confined to affinity-owned state and the shard's EffectBuffer.
  EventHandle schedule_sharded_in(Duration delay, std::uint64_t affinity,
                                  EventQueue::ShardHandler handler) {
    return queue_.schedule_sharded(now() + delay, affinity,
                                   std::move(handler));
  }
  EventHandle schedule_sharded_at(SimTime when, std::uint64_t affinity,
                                  EventQueue::ShardHandler handler) {
    return queue_.schedule_sharded(when, affinity, std::move(handler));
  }

  /// Runs every pending event (including ones scheduled while running).
  /// Returns the number of events executed.  `max_events` guards against
  /// runaway self-rescheduling loops; under epoch-barrier stepping it is
  /// checked at instant boundaries (a whole epoch always completes).
  std::size_t run(std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  /// Runs events with time <= `until`; the clock ends at exactly `until`
  /// even if the queue drains earlier.
  std::size_t run_until(SimTime until);

  /// Epoch-core observability (tests): batches and sharded events stepped
  /// by this simulation so far.
  [[nodiscard]] const EpochExecutor& epoch_executor() const {
    return executor_;
  }

 private:
  EventQueue queue_;
  EpochExecutor executor_;
  std::vector<EpochEvent> epoch_batch_;  // reused across epochs
};

/// A task that re-fires at a fixed period until stopped.  The callback runs
/// first at `start + period` (matching an SNMP poller that reports at the
/// end of each interval).
class PeriodicTask {
 public:
  /// `body` receives the firing time; `period` must be positive.
  PeriodicTask(Simulation& sim, Duration period,
               std::function<void(SimTime)> body);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void fire(SimTime now);

  Simulation& sim_;
  Duration period_;
  std::function<void(SimTime)> body_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace vod::sim
