#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/contract.h"
#include "obs/profile.h"

namespace vod::sim {

EventHandle EventQueue::schedule(SimTime when, Callback callback) {
  require(!(when < now_), "EventQueue::schedule: time is in the past");
  require(callback, "EventQueue::schedule: empty callback");
  const std::uint64_t sequence = next_sequence_++;
  Entry entry;
  entry.when = when;
  entry.sequence = sequence;
  entry.callback = std::move(callback);
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(sequence);
  return EventHandle{sequence};
}

EventHandle EventQueue::schedule_sharded(SimTime when, std::uint64_t affinity,
                                         ShardHandler handler) {
  require(!(when < now_),
      "EventQueue::schedule_sharded: time is in the past");
  require(handler, "EventQueue::schedule_sharded: empty handler");
  require(affinity != kNoAffinity,
      "EventQueue::schedule_sharded: reserved affinity key");
  const std::uint64_t sequence = next_sequence_++;
  Entry entry;
  entry.when = when;
  entry.sequence = sequence;
  entry.affinity = affinity;
  entry.sharded = std::move(handler);
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(sequence);
  return EventHandle{sequence};
}

bool EventQueue::cancel(EventHandle handle) {
  // Only events still waiting may be cancelled; a handle whose event
  // already fired (or was cancelled before) is not pending and is
  // rejected, leaving the counters untouched.
  if (!handle.valid() || pending_.erase(handle.sequence_) == 0) return false;
  // An event popped into the current epoch batch is no longer in the heap:
  // dropping it from pending_ (and the popped set) is the whole cancel —
  // take_epoch_event() will skip it.  Parking it in cancelled_ would leak,
  // since no heap entry would ever match it.
  if (epoch_popped_.erase(handle.sequence_) != 0) return true;
  cancelled_.insert(handle.sequence_);
  if (cancelled_.size() * 2 > heap_.size()) compact();
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [&](const Entry& e) {
    return cancelled_.contains(e.sequence);
  });
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().sequence);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

std::optional<SimTime> EventQueue::next_time() const {
  drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

bool EventQueue::run_next() {
  VOD_PROFILE_SCOPE("sim.run_next");
  drop_cancelled_head();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(entry.sequence);
  now_ = entry.when;
  if (entry.sharded) {
    // Serial execution of a sharded event: handler, then its effects,
    // immediately — what a one-shard one-worker epoch would do, so the two
    // stepping modes agree byte-for-byte.
    EffectBuffer buffer;
    entry.sharded(now_, buffer);
    buffer.run_all(now_);
  } else {
    entry.callback(now_);
  }
  return true;
}

std::size_t EventQueue::pop_epoch(std::vector<EpochEvent>& out) {
  VOD_PROFILE_SCOPE("sim.pop_epoch");
  out.clear();
  drop_cancelled_head();
  if (heap_.empty()) return 0;
  const SimTime when = heap_.front().when;
  now_ = when;
  while (!heap_.empty() && heap_.front().when == when) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    // Cancelled entries behind the head still hide inside the instant.
    if (cancelled_.erase(entry.sequence) != 0) continue;
    epoch_popped_.insert(entry.sequence);
    EpochEvent event;
    event.sequence = entry.sequence;
    event.affinity = entry.affinity;
    event.callback = std::move(entry.callback);
    event.sharded = std::move(entry.sharded);
    out.push_back(std::move(event));
  }
  // Heap pops at one timestamp arrive in ascending sequence — scheduling
  // order, the same order run_next() would have fired them.
  return out.size();
}

bool EventQueue::take_epoch_event(std::uint64_t sequence) {
  if (pending_.erase(sequence) == 0) return false;  // cancelled mid-epoch
  epoch_popped_.erase(sequence);
  return true;
}

bool EventQueue::empty() const { return pending_.empty(); }

std::size_t EventQueue::pending_count() const { return pending_.size(); }

}  // namespace vod::sim
