#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace vod::sim {

EventHandle EventQueue::schedule(SimTime when, Callback callback) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time is in the past");
  }
  if (!callback) {
    throw std::invalid_argument("EventQueue::schedule: empty callback");
  }
  const std::uint64_t sequence = next_sequence_++;
  heap_.push(Entry{when, sequence, std::move(callback)});
  ++live_count_;
  return EventHandle{sequence};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid() || handle.sequence_ >= next_sequence_) return false;
  // Cancellation is lazy: remember the sequence and skip it when popped.
  const bool inserted = cancelled_.insert(handle.sequence_).second;
  if (!inserted) return false;
  if (live_count_ == 0) {
    cancelled_.erase(handle.sequence_);
    return false;
  }
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().sequence);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

std::optional<SimTime> EventQueue::next_time() const {
  // const_cast-free variant: scan past cancelled entries without popping.
  // The heap top is the only candidate; cancelled tops are rare and cheap to
  // handle in run_next, so here we conservatively report the top entry's
  // time after skipping cancelled ones via a copy of the check.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().when;
}

bool EventQueue::run_next() {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_count_;
  now_ = entry.when;
  entry.callback(now_);
  return true;
}

bool EventQueue::empty() const { return live_count_ == 0; }

std::size_t EventQueue::pending_count() const { return live_count_; }

}  // namespace vod::sim
