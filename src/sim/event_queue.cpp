#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/contract.h"
#include "obs/profile.h"

namespace vod::sim {

EventHandle EventQueue::schedule(SimTime when, Callback callback) {
  require(!(when < now_), "EventQueue::schedule: time is in the past");
  require(callback, "EventQueue::schedule: empty callback");
  const std::uint64_t sequence = next_sequence_++;
  heap_.push_back(Entry{when, sequence, std::move(callback)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(sequence);
  return EventHandle{sequence};
}

bool EventQueue::cancel(EventHandle handle) {
  // Only events still waiting in the heap may be cancelled; a handle whose
  // event already fired (or was cancelled before) is not pending and is
  // rejected, leaving the counters untouched.
  if (!handle.valid() || pending_.erase(handle.sequence_) == 0) return false;
  cancelled_.insert(handle.sequence_);
  if (cancelled_.size() * 2 > heap_.size()) compact();
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [&](const Entry& e) {
    return cancelled_.contains(e.sequence);
  });
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().sequence);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

std::optional<SimTime> EventQueue::next_time() const {
  drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

bool EventQueue::run_next() {
  VOD_PROFILE_SCOPE("sim.run_next");
  drop_cancelled_head();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(entry.sequence);
  now_ = entry.when;
  entry.callback(now_);
  return true;
}

bool EventQueue::empty() const { return pending_.empty(); }

std::size_t EventQueue::pending_count() const { return pending_.size(); }

}  // namespace vod::sim
