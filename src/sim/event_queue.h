// Discrete-event queue.
//
// A min-heap of (time, sequence, callback).  The sequence number makes
// same-time events fire in scheduling order, which keeps the whole simulator
// deterministic.  Events can be cancelled through the handle returned at
// scheduling time.
//
// Two stepping modes share the heap: run_next() pops one event at a time
// (the serial path every paper bench is frozen against), and pop_epoch()
// pops the whole same-instant batch for the epoch-barrier core (sim/epoch.h)
// — sharded events run a parallel phase there, while under run_next() they
// execute inline with a local effect buffer, which is the same semantics at
// width one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"
#include "sim/epoch.h"

namespace vod::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
class EventHandle {
 public:
  constexpr EventHandle() = default;

  [[nodiscard]] constexpr bool valid() const { return sequence_ != 0; }

  friend constexpr bool operator==(EventHandle, EventHandle) = default;

 private:
  friend class EventQueue;
  constexpr explicit EventHandle(std::uint64_t sequence)
      : sequence_(sequence) {}
  std::uint64_t sequence_ = 0;
};

/// Priority queue of timed callbacks.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;
  using ShardHandler = std::function<void(SimTime, EffectBuffer&)>;

  /// Schedules `callback` to fire at `when`.  Scheduling in the past (before
  /// the last popped event) throws std::invalid_argument.
  EventHandle schedule(SimTime when, Callback callback);

  /// Schedules a sharded event: under epoch-barrier stepping, `handler`
  /// runs in the parallel phase of the `when` instant, partitioned by the
  /// stable `affinity` key (session/server/link id), with writes confined
  /// to the shard's EffectBuffer (contract in sim/epoch.h).  Under
  /// run_next() it executes inline — handler, then its effects — which is
  /// byte-identical to the epoch path at any width by construction.
  EventHandle schedule_sharded(SimTime when, std::uint64_t affinity,
                               ShardHandler handler);

  /// Cancels a pending event; returns false if it already fired, was
  /// already cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);

  /// Time of the earliest pending event, if any.
  [[nodiscard]] std::optional<SimTime> next_time() const;

  /// Pops and runs the earliest event; returns false when empty.
  /// Cancelled events are skipped silently.
  bool run_next();

  /// Pops every pending event at the earliest timestamp into `out` in
  /// scheduling order and advances now() to that instant WITHOUT running
  /// anything — the epoch executor runs the batch.  Popped events stay
  /// "pending" (cancellable) until take_epoch_event() consumes them.
  /// Returns the batch size (0 when the queue is empty).
  std::size_t pop_epoch(std::vector<EpochEvent>& out);

  /// Consumes one popped-but-not-yet-run epoch event; returns false when it
  /// was cancelled after the pop (the executor then skips it).  Only the
  /// epoch executor calls this.
  bool take_epoch_event(std::uint64_t sequence);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending_count() const;

  /// Raw heap size, cancelled entries included (observability for the
  /// compaction policy — see cancel()).
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

  /// The time of the most recently fired event (simulation "now").
  [[nodiscard]] SimTime now() const { return now_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t sequence;
    std::uint64_t affinity = kNoAffinity;
    Callback callback;       // serial event (affinity == kNoAffinity)
    ShardHandler sharded;    // sharded event otherwise
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  void drop_cancelled_head() const;
  void compact();

  // Cancellation is lazy: a cancelled event usually stays in the heap until
  // it reaches the top, where drop_cancelled_head() discards it.  When
  // cancelled entries come to outnumber live ones (long fault storms cancel
  // whole batches of watchdogs), cancel() compacts: it erases every
  // cancelled entry and re-heapifies, bounding memory at ~2x the live
  // events.  Ordering is untouched — (when, sequence) is a total order, so
  // the heap's firing order is independent of its internal layout.  Purging
  // is logically const (it never changes which events are pending), so the
  // heap and the cancelled set are mutable and next_time() stays honest.
  // The heap is a std::vector managed with the <algorithm> heap primitives
  // rather than std::priority_queue so compaction can walk and rebuild it.
  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  /// Sequences scheduled, not yet fired and not cancelled.  Membership here
  /// is what distinguishes a cancellable event from one that already fired
  /// (both have sequence < next_sequence_).
  std::unordered_set<std::uint64_t> pending_;
  /// Sequences popped by pop_epoch() and not yet consumed: they are out of
  /// the heap but still pending, so cancel() must not park them in
  /// cancelled_ (nothing in the heap would ever match and purge them).
  /// Membership-only use; never iterated.
  std::unordered_set<std::uint64_t> epoch_popped_;
  std::uint64_t next_sequence_ = 1;
  SimTime now_{0.0};
};

}  // namespace vod::sim
