// Bellman–Ford single-source shortest paths.
//
// Serves two purposes: a property-test oracle for Dijkstra (they must agree
// on every non-negative-weight graph), and a reference implementation for
// readers comparing textbook algorithms (the paper cites [5], [6]).
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "routing/graph.h"
#include "routing/path.h"

namespace vod::routing {

/// Result of a Bellman–Ford run: per-node distances (kUnreached when
/// disconnected) and reconstructed paths.
struct BellmanFordResult {
  NodeId source;
  std::vector<double> distance;
  std::vector<NodeId> predecessor;

  [[nodiscard]] std::optional<Path> path_to(NodeId node,
                                            const Graph& graph) const;
};

/// Runs Bellman–Ford from `source`.  Graph weights are non-negative by
/// construction, so negative-cycle detection is an internal assertion.
BellmanFordResult bellman_ford(const Graph& graph, NodeId source);

}  // namespace vod::routing
