// Dijkstra single-source shortest paths, with the optional step-by-step
// trace the paper prints as Tables 4 and 5.
//
// The trace records, after each node is moved into the finalized set, the
// tentative distance and current best path to every other node — exactly the
// row format of the paper's tables (R = unreachable-so-far).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "routing/graph.h"
#include "routing/path.h"

namespace vod::routing {

/// Distance value used for "not yet reached" (the paper's `R`).
inline constexpr double kUnreached = std::numeric_limits<double>::infinity();

/// The shortest-path tree from one source.
class ShortestPaths {
 public:
  ShortestPaths(NodeId source, std::vector<double> distance,
                std::vector<NodeId> predecessor, std::vector<LinkId> via_link)
      : source_(source),
        distance_(std::move(distance)),
        predecessor_(std::move(predecessor)),
        via_link_(std::move(via_link)) {}

  [[nodiscard]] NodeId source() const { return source_; }

  /// Distance to `node`, kUnreached if disconnected.
  [[nodiscard]] double distance_to(NodeId node) const;

  [[nodiscard]] bool reachable(NodeId node) const {
    return distance_to(node) != kUnreached;
  }

  /// Full path source -> node; nullopt if unreachable.
  [[nodiscard]] std::optional<Path> path_to(NodeId node) const;

 private:
  NodeId source_;
  std::vector<double> distance_;
  std::vector<NodeId> predecessor_;
  std::vector<LinkId> via_link_;
};

/// One row of the paper's Dijkstra tables: the state after `finalized` was
/// added to the permanent set.
struct DijkstraStep {
  /// Node moved to the permanent set at this step (the source for step 1).
  NodeId finalized;
  /// The permanent set, in insertion order, up to and including `finalized`.
  std::vector<NodeId> permanent_set;
  /// Tentative distances to every node (kUnreached = the paper's "R").
  std::vector<double> tentative;
  /// Current best-known path to every node (empty if unreached).
  std::vector<std::vector<NodeId>> best_path;
};

using DijkstraTrace = std::vector<DijkstraStep>;

/// Runs Dijkstra from `source`.  If `trace` is non-null it receives one
/// DijkstraStep per finalized node.  Throws std::invalid_argument if the
/// source is not in the graph.
ShortestPaths dijkstra(const Graph& graph, NodeId source,
                       DijkstraTrace* trace = nullptr);

/// Shortest path between two nodes; nullopt if disconnected.
std::optional<Path> shortest_path(const Graph& graph, NodeId from, NodeId to);

}  // namespace vod::routing
