#include "routing/dijkstra.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/contract.h"

namespace vod::routing {

double ShortestPaths::distance_to(NodeId node) const {
  require(!(!node.valid() || node.value() >= distance_.size()),
      "ShortestPaths: unknown node");
  return distance_[node.value()];
}

std::optional<Path> ShortestPaths::path_to(NodeId node) const {
  if (!reachable(node)) return std::nullopt;
  Path path;
  path.cost = distance_[node.value()];
  for (NodeId at = node; at != source_; at = predecessor_[at.value()]) {
    path.nodes.push_back(at);
    path.links.push_back(via_link_[at.value()]);
  }
  path.nodes.push_back(source_);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

namespace {

std::vector<NodeId> reconstruct(const std::vector<NodeId>& predecessor,
                                NodeId source, NodeId node) {
  std::vector<NodeId> nodes;
  for (NodeId at = node; at != source; at = predecessor[at.value()]) {
    nodes.push_back(at);
  }
  nodes.push_back(source);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace

ShortestPaths dijkstra(const Graph& graph, NodeId source,
                       DijkstraTrace* trace) {
  require(graph.has_node(source), "dijkstra: source not in graph");
  const std::size_t n = graph.node_count();
  std::vector<double> dist(n, kUnreached);
  std::vector<NodeId> pred(n);
  std::vector<LinkId> via(n);
  std::vector<bool> done(n, false);
  dist[source.value()] = 0.0;

  using QueueEntry = std::pair<double, NodeId::underlying_type>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      frontier;
  frontier.emplace(0.0, source.value());

  std::vector<NodeId> permanent;
  permanent.reserve(n);

  while (!frontier.empty()) {
    const auto [d, u_raw] = frontier.top();
    frontier.pop();
    const NodeId u{u_raw};
    if (done[u_raw]) continue;  // stale entry
    done[u_raw] = true;
    permanent.push_back(u);

    for (const Edge& edge : graph.neighbors(u)) {
      const auto v = edge.to.value();
      const double candidate = d + edge.weight;
      if (candidate < dist[v]) {
        dist[v] = candidate;
        pred[v] = u;
        via[v] = edge.link;
        frontier.emplace(candidate, v);
      }
    }

    if (trace != nullptr) {
      DijkstraStep step;
      step.finalized = u;
      step.permanent_set = permanent;
      step.tentative = dist;
      step.best_path.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        if (dist[v] != kUnreached) {
          step.best_path[v] = reconstruct(pred, source, NodeId{
              static_cast<NodeId::underlying_type>(v)});
        }
      }
      trace->push_back(std::move(step));
    }
  }

  return ShortestPaths{source, std::move(dist), std::move(pred),
                       std::move(via)};
}

std::optional<Path> shortest_path(const Graph& graph, NodeId from,
                                  NodeId to) {
  require(graph.has_node(to), "shortest_path: destination not in graph");
  return dijkstra(graph, from).path_to(to);
}

}  // namespace vod::routing
