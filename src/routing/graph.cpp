#include "routing/graph.h"

#include <stdexcept>
#include <utility>

#include "common/contract.h"

namespace vod::routing {

NodeId Graph::add_node(std::string name) {
  const NodeId id{static_cast<NodeId::underlying_type>(adjacency_.size())};
  adjacency_.emplace_back();
  if (name.empty()) name = "n" + std::to_string(id.value());
  names_.push_back(std::move(name));
  return id;
}

void Graph::check_node(NodeId node, const char* role) const {
  require(has_node(node),
      [&] { return std::string("Graph: unknown ") + role + " node"; });
}

void Graph::add_undirected_edge(NodeId a, NodeId b, LinkId link,
                                double weight) {
  check_node(a, "edge endpoint");
  check_node(b, "edge endpoint");
  require(a != b, "Graph: self-loops are not allowed");
  require(link.valid(), "Graph: invalid link id");
  require(!(weight < 0.0), "Graph: negative edge weight");
  require(!(link.value() < edge_index_.size() && edge_index_[link.value()]),
      "Graph: duplicate link id");
  adjacency_[a.value()].push_back(Edge{b, link, weight});
  adjacency_[b.value()].push_back(Edge{a, link, weight});
  if (edge_index_.size() <= link.value()) {
    edge_index_.resize(link.value() + 1);
  }
  edge_index_[link.value()] = EdgeLocation{a, b};
}

void Graph::set_edge_weight(LinkId link, double weight) {
  require(!(weight < 0.0), "Graph: negative edge weight");
  require_found(
      !(!link.valid() || link.value() >= edge_index_.size() || !edge_index_[link.value()]),
      "Graph::set_edge_weight: unknown link");
  const auto [a, b] = *edge_index_[link.value()];
  for (Edge& e : adjacency_[a.value()]) {
    if (e.link == link) e.weight = weight;
  }
  for (Edge& e : adjacency_[b.value()]) {
    if (e.link == link) e.weight = weight;
  }
}

const std::vector<Edge>& Graph::neighbors(NodeId node) const {
  check_node(node, "query");
  return adjacency_[node.value()];
}

const std::string& Graph::node_name(NodeId node) const {
  check_node(node, "query");
  return names_[node.value()];
}

std::optional<double> Graph::edge_weight(LinkId link) const {
  if (!link.valid() || link.value() >= edge_index_.size() ||
      !edge_index_[link.value()]) {
    return std::nullopt;
  }
  const auto [a, b] = *edge_index_[link.value()];
  for (const Edge& e : adjacency_[a.value()]) {
    if (e.link == link) return e.weight;
  }
  return std::nullopt;
}

std::optional<std::pair<NodeId, NodeId>> Graph::edge_endpoints(
    LinkId link) const {
  if (!link.valid() || link.value() >= edge_index_.size() ||
      !edge_index_[link.value()]) {
    return std::nullopt;
  }
  const auto loc = *edge_index_[link.value()];
  return std::make_pair(loc.a, loc.b);
}

}  // namespace vod::routing
