#include "routing/trace_format.h"

#include <sstream>

#include "common/table.h"

namespace vod::routing {

std::string format_dijkstra_trace(const Graph& graph, NodeId source,
                                  const DijkstraTrace& trace) {
  // Column set: Step | Nodes | for each non-source node: D<name> | Path
  std::vector<NodeId> columns;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const NodeId node{static_cast<NodeId::underlying_type>(v)};
    if (node != source) columns.push_back(node);
  }

  std::vector<std::string> headers{"Step", "Nodes"};
  for (NodeId node : columns) {
    headers.push_back("D" + graph.node_name(node));
    headers.push_back("Path");
  }
  TextTable table{std::move(headers)};

  for (std::size_t s = 0; s < trace.size(); ++s) {
    const DijkstraStep& step = trace[s];
    std::ostringstream set;
    set << '{';
    for (std::size_t i = 0; i < step.permanent_set.size(); ++i) {
      if (i > 0) set << ',';
      set << graph.node_name(step.permanent_set[i]);
    }
    set << '}';

    std::vector<std::string> row{std::to_string(s + 1), set.str()};
    for (NodeId node : columns) {
      const double d = step.tentative[node.value()];
      if (d == kUnreached) {
        row.emplace_back("R");
        row.emplace_back("-");
      } else {
        row.push_back(TextTable::num(d, 4));
        std::string path;
        for (std::size_t i = 0; i < step.best_path[node.value()].size();
             ++i) {
          if (i > 0) path += ',';
          path += graph.node_name(step.best_path[node.value()][i]);
        }
        row.push_back(std::move(path));
      }
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace vod::routing
