#include "routing/bellman_ford.h"

#include <algorithm>
#include <stdexcept>

#include "common/contract.h"
#include "routing/dijkstra.h"

namespace vod::routing {

std::optional<Path> BellmanFordResult::path_to(NodeId node,
                                               const Graph& graph) const {
  if (!node.valid() || node.value() >= distance.size() ||
      distance[node.value()] == kUnreached) {
    return std::nullopt;
  }
  Path path;
  path.cost = distance[node.value()];
  for (NodeId at = node; at != source; at = predecessor[at.value()]) {
    path.nodes.push_back(at);
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  // Recover the link ids from consecutive node pairs.
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    LinkId chosen;
    double best = kUnreached;
    for (const Edge& e : graph.neighbors(path.nodes[i])) {
      if (e.to == path.nodes[i + 1] && e.weight < best) {
        best = e.weight;
        chosen = e.link;
      }
    }
    path.links.push_back(chosen);
  }
  return path;
}

BellmanFordResult bellman_ford(const Graph& graph, NodeId source) {
  require(graph.has_node(source), "bellman_ford: source not in graph");
  const std::size_t n = graph.node_count();
  BellmanFordResult result{source, std::vector<double>(n, kUnreached),
                           std::vector<NodeId>(n)};
  result.distance[source.value()] = 0.0;

  for (std::size_t round = 0; round + 1 < std::max<std::size_t>(n, 1);
       ++round) {
    bool changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (result.distance[u] == kUnreached) continue;
      const NodeId from{static_cast<NodeId::underlying_type>(u)};
      for (const Edge& e : graph.neighbors(from)) {
        const double candidate = result.distance[u] + e.weight;
        if (candidate < result.distance[e.to.value()]) {
          result.distance[e.to.value()] = candidate;
          result.predecessor[e.to.value()] = from;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return result;
}

}  // namespace vod::routing
