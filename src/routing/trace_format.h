// Rendering of Dijkstra traces in the paper's table format.
//
// Tables 4 and 5 of the paper show, per algorithm step, the permanent node
// set and the tentative distance + current path for each non-source node.
// This helper reproduces that layout so the bench output can be compared
// against the paper cell by cell.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "routing/dijkstra.h"
#include "routing/graph.h"

namespace vod::routing {

/// Renders `trace` (from dijkstra() run on `graph` from `source`) as an
/// aligned text table with one row per step and, for every node except the
/// source, a "D<name>" distance column and a "Path" column.  Unreached
/// entries print as "R" / "-" exactly like the paper.
std::string format_dijkstra_trace(const Graph& graph, NodeId source,
                                  const DijkstraTrace& trace);

}  // namespace vod::routing
