// Weighted undirected graph for route computation.
//
// The routing layer is deliberately independent of the network simulator:
// the VRA builds a Graph snapshot from the database's link entries (weights
// are Link Validation Numbers), runs Dijkstra on it, and throws it away.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"

namespace vod::routing {

/// One directed half of an undirected edge, as seen from its origin node.
struct Edge {
  NodeId to;
  LinkId link;
  double weight = 0.0;
};

/// An undirected graph with non-negative edge weights.  Nodes are dense
/// indices (NodeId 0..n-1); edges carry the LinkId of the network link they
/// model so routes can be mapped back onto the topology.
class Graph {
 public:
  Graph() = default;

  /// Adds a node, returning its id (ids are assigned densely from 0).
  NodeId add_node(std::string name = {});

  /// Adds an undirected edge.  Both endpoints must exist, the weight must be
  /// non-negative (the paper's "negative validation" is a penalty magnitude,
  /// not a signed weight — see DESIGN.md), and `link` must not repeat.
  void add_undirected_edge(NodeId a, NodeId b, LinkId link, double weight);

  /// Updates the weight of an existing edge (both directions).
  /// Throws std::out_of_range for unknown links.
  void set_edge_weight(LinkId link, double weight);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] const std::vector<Edge>& neighbors(NodeId node) const;
  [[nodiscard]] const std::string& node_name(NodeId node) const;
  [[nodiscard]] bool has_node(NodeId node) const {
    return node.valid() && node.value() < adjacency_.size();
  }

  /// Weight of the edge carried by `link`, if it exists in this graph.
  [[nodiscard]] std::optional<double> edge_weight(LinkId link) const;

  /// Endpoints of `link`, if present.
  [[nodiscard]] std::optional<std::pair<NodeId, NodeId>> edge_endpoints(
      LinkId link) const;

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const { return edge_index_.size(); }

 private:
  struct EdgeLocation {
    NodeId a;
    NodeId b;
  };

  void check_node(NodeId node, const char* role) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::string> names_;
  // LinkId -> endpoints, for weight updates and lookups.
  std::vector<std::optional<EdgeLocation>> edge_index_;
};

}  // namespace vod::routing
