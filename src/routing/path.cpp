#include "routing/path.h"

#include "routing/graph.h"

namespace vod::routing {

std::string Path::to_string(const Graph& graph) const {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ',';
    out += graph.node_name(nodes[i]);
  }
  return out;
}

}  // namespace vod::routing
