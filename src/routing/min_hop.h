// Minimum-hop routing (baseline).
//
// Ignores all load information and routes over the fewest links — what a
// plain static routing table would do.  Used by the baseline comparison
// benches to show what the VRA's load-aware weights buy.
#pragma once

#include <optional>

#include "common/ids.h"
#include "routing/graph.h"
#include "routing/path.h"

namespace vod::routing {

/// Fewest-hops path between two nodes (BFS); cost is the hop count.
/// Ties are broken toward the lexicographically smallest node sequence so
/// results are deterministic.  nullopt if disconnected.
std::optional<Path> min_hop_path(const Graph& graph, NodeId from, NodeId to);

}  // namespace vod::routing
