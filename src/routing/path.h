// Route representation shared by all routing algorithms.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"

namespace vod::routing {
class Graph;

/// A simple path through the graph: the node sequence (source first), the
/// links traversed (one fewer than nodes), and the total weight.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
  double cost = 0.0;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
  [[nodiscard]] std::size_t hop_count() const { return links.size(); }
  [[nodiscard]] NodeId source() const { return nodes.front(); }
  [[nodiscard]] NodeId destination() const { return nodes.back(); }

  /// "U2,U1,U4" using the graph's node names (the paper's notation).
  [[nodiscard]] std::string to_string(const Graph& graph) const;
};

}  // namespace vod::routing
