#include "routing/min_hop.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <vector>

#include "common/contract.h"
#include "routing/dijkstra.h"

namespace vod::routing {

std::optional<Path> min_hop_path(const Graph& graph, NodeId from, NodeId to) {
  require(!(!graph.has_node(from) || !graph.has_node(to)),
      "min_hop_path: node not in graph");
  const std::size_t n = graph.node_count();
  std::vector<int> depth(n, -1);
  std::vector<NodeId> pred(n);
  std::vector<LinkId> via(n);
  std::deque<NodeId> frontier{from};
  depth[from.value()] = 0;

  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    // Visit neighbors in ascending node order for deterministic tie-breaks.
    std::vector<Edge> edges = graph.neighbors(u);
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
    for (const Edge& e : edges) {
      if (depth[e.to.value()] == -1) {
        depth[e.to.value()] = depth[u.value()] + 1;
        pred[e.to.value()] = u;
        via[e.to.value()] = e.link;
        frontier.push_back(e.to);
      }
    }
  }

  if (depth[to.value()] == -1) return std::nullopt;
  Path path;
  path.cost = depth[to.value()];
  for (NodeId at = to; at != from; at = pred[at.value()]) {
    path.nodes.push_back(at);
    path.links.push_back(via[at.value()]);
  }
  path.nodes.push_back(from);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

}  // namespace vod::routing
