// User service classes for tiered QoS.
//
// The paper promises every stream "a minimum decent frame rate"; a loaded
// or faulty network cannot keep that promise to everyone at once.  Classes
// make the triage explicit (the agent-based bandwidth-management literature
// on distributed VoD uses the same three tiers): premium sessions get the
// largest weighted share of contended links and may preempt lower classes
// at admission; background sessions absorb the shed when capacity runs out.
//
// The enumerator order IS the priority order: a smaller underlying value
// outranks a larger one.  Shedding walks the enum from the back (background
// first), protection walks it from the front (premium first).  Everything
// class-aware defaults to a single-class (kStandard, weight 1)
// configuration that is byte-identical to the classless paper behaviour.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vod {

/// Service tier of one user request / session.  Order = priority.
enum class UserClass : std::uint8_t {
  kPremium = 0,
  kStandard = 1,
  kBackground = 2,
};

inline constexpr std::size_t kUserClassCount = 3;

/// Array index of a class (kPremium -> 0, ..., kBackground -> 2).
[[nodiscard]] constexpr std::size_t class_index(UserClass cls) {
  return static_cast<std::size_t>(cls);
}

/// True when `a` strictly outranks `b` (may preempt it, is shed after it).
[[nodiscard]] constexpr bool outranks(UserClass a, UserClass b) {
  return static_cast<std::uint8_t>(a) < static_cast<std::uint8_t>(b);
}

[[nodiscard]] constexpr const char* to_string(UserClass cls) {
  switch (cls) {
    case UserClass::kPremium:
      return "premium";
    case UserClass::kStandard:
      return "standard";
    case UserClass::kBackground:
      return "background";
  }
  return "unknown";
}

}  // namespace vod
