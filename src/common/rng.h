// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng so runs are reproducible
// from a single seed; nothing in the library reads global entropy.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "common/contract.h"

namespace vod {

/// A seeded pseudo-random source with the sampling helpers the workloads
/// need.  Copyable (copies fork the stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    require(lo < hi, "Rng::uniform: empty range");
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    require(!(lo > hi), "Rng::uniform_int: empty range");
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Exponential with the given rate (events per second).
  double exponential(double rate) {
    require(!(rate <= 0.0), "Rng::exponential: rate must be positive");
    return std::exponential_distribution<double>{rate}(engine_);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) {
    require(!(stddev < 0.0), "Rng::normal: stddev must be >= 0");
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    require(!(p < 0.0 || p > 1.0), "Rng::bernoulli: p outside [0,1]");
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Index drawn from explicit (unnormalized, non-negative) weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    require(!weights.empty(), "Rng::weighted_index: no weights");
    std::discrete_distribution<std::size_t> dist(weights.begin(),
                                                 weights.end());
    return dist(engine_);
  }

  /// Access to the raw engine for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vod
