// Plain-text table rendering for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables; TextTable gives
// them a single consistent, aligned output format.
#pragma once

#include <cstddef>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace vod {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends one row; it may have fewer cells than there are headers
  /// (missing cells render empty) but not more.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` significant decimals.
  static std::string num(double value, int precision = 4);

  /// Renders the table with a header rule, e.g.
  ///   Link            | 8am   | 10am
  ///   ----------------+-------+------
  ///   Patra-Athens    | 0.083 | 0.632
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vod
