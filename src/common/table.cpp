#include "common/table.h"

#include <algorithm>
#include <stdexcept>

#include "common/contract.h"

namespace vod {

void TextTable::add_row(std::vector<std::string> cells) {
  require(!(cells.size() > headers_.size()),
      "TextTable::add_row: more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << " | ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    return os.str();
  };

  std::ostringstream out;
  out << render_row(headers_) << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) out << render_row(row) << '\n';
  return out.str();
}

}  // namespace vod
