// Contract-checking helpers.
//
// Preconditions throw std::invalid_argument, lookups that must succeed throw
// std::out_of_range, and internal invariants throw std::logic_error.  These
// are programmer errors, not recoverable conditions, so exceptions (rather
// than status returns) keep call sites clean per the Core Guidelines (I.6).
#pragma once

#include <stdexcept>
#include <string>

namespace vod {

/// Throws std::invalid_argument with `message` unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Throws std::logic_error with `message` unless `condition` holds.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) throw std::logic_error(message);
}

}  // namespace vod
