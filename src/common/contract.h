// Contract-checking helpers.
//
// Preconditions throw std::invalid_argument, lookups that must succeed throw
// std::out_of_range, and internal invariants throw std::logic_error.  These
// are programmer errors, not recoverable conditions, so exceptions (rather
// than status returns) keep call sites clean per the Core Guidelines (I.6).
//
// All throws in the library go through these helpers (vodlint's [raw-throw]
// rule enforces it), which keeps the exception taxonomy in one place and the
// failure messages lazy: the message argument is either a pointer/string
// passed through untouched, or a callable invoked only on the failing path —
// so a hot-path `require(ok, "literal")` never allocates, and
// `require(ok, [&] { return "id " + std::to_string(id); })` builds its
// message only when the check actually fails.
#pragma once

#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace vod {

namespace detail {

/// Throws `Exception` with `message`, invoking `message` first when it is a
/// lazy builder (any nullary callable whose result converts to the
/// exception's what-string).
template <class Exception, class Message>
[[noreturn]] void raise(Message&& message) {
  if constexpr (std::is_invocable_v<Message&>) {
    throw Exception(message());
  } else {
    throw Exception(std::forward<Message>(message));
  }
}

}  // namespace detail

/// Throws std::invalid_argument unless `condition` holds (precondition).
/// The condition may be anything contextually convertible to bool
/// (std::optional, std::function, smart pointers, ...).
template <class Condition, class Message>
constexpr void require(const Condition& condition, Message&& message) {
  if (static_cast<bool>(condition)) [[likely]] return;
  detail::raise<std::invalid_argument>(std::forward<Message>(message));
}

/// Throws std::out_of_range unless `condition` holds (lookup that must
/// succeed, e.g. `require_found(it != map.end(), "...")`).
template <class Condition, class Message>
constexpr void require_found(const Condition& condition, Message&& message) {
  if (static_cast<bool>(condition)) [[likely]] return;
  detail::raise<std::out_of_range>(std::forward<Message>(message));
}

/// Throws std::logic_error unless `condition` holds (internal invariant).
template <class Condition, class Message>
constexpr void ensure(const Condition& condition, Message&& message) {
  if (static_cast<bool>(condition)) [[likely]] return;
  detail::raise<std::logic_error>(std::forward<Message>(message));
}

/// Unconditional forms, for paths already known to be failures (a parse
/// helper that only reports, a default: branch that must be unreachable).
/// Messages here may be built eagerly — the throw allocates regardless.
template <class Message>
[[noreturn]] void fail_require(Message&& message) {
  detail::raise<std::invalid_argument>(std::forward<Message>(message));
}

template <class Message>
[[noreturn]] void fail_lookup(Message&& message) {
  detail::raise<std::out_of_range>(std::forward<Message>(message));
}

template <class Message>
[[noreturn]] void fail_ensure(Message&& message) {
  detail::raise<std::logic_error>(std::forward<Message>(message));
}

}  // namespace vod
