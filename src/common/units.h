// Strongly-typed physical units.
//
// The paper's own tables mix "kb", "Mb", "bits" and percentages; reproducing
// it correctly demands that bandwidth (megabits per second) and storage
// (megabytes) never silently convert into one another.  Each unit is a thin
// wrapper over double with only the physically meaningful operations.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <ostream>
#include <stdexcept>

#include "common/contract.h"

namespace vod {

/// Bandwidth in megabits per second.
class Mbps {
 public:
  constexpr Mbps() = default;
  constexpr explicit Mbps(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }
  [[nodiscard]] constexpr double kilobits_per_sec() const {
    return value_ * 1000.0;
  }
  [[nodiscard]] constexpr double bits_per_sec() const {
    return value_ * 1e6;
  }

  friend constexpr auto operator<=>(Mbps, Mbps) = default;

  constexpr Mbps& operator+=(Mbps other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Mbps& operator-=(Mbps other) {
    value_ -= other.value_;
    return *this;
  }
  friend constexpr Mbps operator+(Mbps a, Mbps b) {
    return Mbps{a.value_ + b.value_};
  }
  friend constexpr Mbps operator-(Mbps a, Mbps b) {
    return Mbps{a.value_ - b.value_};
  }
  friend constexpr Mbps operator*(Mbps a, double s) {
    return Mbps{a.value_ * s};
  }
  friend constexpr Mbps operator*(double s, Mbps a) {
    return Mbps{a.value_ * s};
  }
  friend constexpr Mbps operator/(Mbps a, double s) {
    return Mbps{a.value_ / s};
  }
  /// Bandwidth ratio (e.g. utilization) is dimensionless.
  friend constexpr double operator/(Mbps a, Mbps b) {
    return a.value_ / b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, Mbps v) {
    return os << v.value_ << " Mbps";
  }

 private:
  double value_ = 0.0;
};

constexpr Mbps kilobits_per_sec(double kbps) { return Mbps{kbps / 1000.0}; }
constexpr Mbps bits_per_sec(double bps) { return Mbps{bps / 1e6}; }

/// Storage size in megabytes.
class MegaBytes {
 public:
  constexpr MegaBytes() = default;
  constexpr explicit MegaBytes(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }
  [[nodiscard]] constexpr double megabits() const { return value_ * 8.0; }

  friend constexpr auto operator<=>(MegaBytes, MegaBytes) = default;

  constexpr MegaBytes& operator+=(MegaBytes other) {
    value_ += other.value_;
    return *this;
  }
  constexpr MegaBytes& operator-=(MegaBytes other) {
    value_ -= other.value_;
    return *this;
  }
  friend constexpr MegaBytes operator+(MegaBytes a, MegaBytes b) {
    return MegaBytes{a.value_ + b.value_};
  }
  friend constexpr MegaBytes operator-(MegaBytes a, MegaBytes b) {
    return MegaBytes{a.value_ - b.value_};
  }
  friend constexpr MegaBytes operator*(MegaBytes a, double s) {
    return MegaBytes{a.value_ * s};
  }
  friend constexpr MegaBytes operator*(double s, MegaBytes a) {
    return MegaBytes{a.value_ * s};
  }
  friend constexpr MegaBytes operator/(MegaBytes a, double s) {
    return MegaBytes{a.value_ / s};
  }
  friend constexpr double operator/(MegaBytes a, MegaBytes b) {
    return a.value_ / b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, MegaBytes v) {
    return os << v.value_ << " MB";
  }

 private:
  double value_ = 0.0;
};

constexpr MegaBytes gigabytes(double gb) { return MegaBytes{gb * 1024.0}; }

/// Seconds needed to move `size` over a channel of rate `rate`.
/// Throws std::invalid_argument for non-positive rates.
inline double transfer_seconds(MegaBytes size, Mbps rate) {
  require(!(rate.value() <= 0.0), "transfer_seconds: rate must be positive");
  return size.megabits() / rate.value();
}

/// Rate needed to move `size` in `seconds`.
inline Mbps rate_for_transfer(MegaBytes size, double seconds) {
  require(!(seconds <= 0.0), "rate_for_transfer: duration must be positive");
  return Mbps{size.megabits() / seconds};
}

}  // namespace vod
