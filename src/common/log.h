// Minimal leveled logging.
//
// The simulator is deterministic and single-threaded, so logging is a simple
// global-level filter writing to a configurable stream; benches silence it,
// examples turn on Info to narrate what the service decides.
//
// When a sim-time clock is installed (set_clock), every line is prefixed
// with the current simulated time — `[12.5s] [info] ...` — so logs line up
// with trace timestamps.  Without a clock the historical `[info] ...`
// format is unchanged.
#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "common/sim_time.h"

namespace vod {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global logging configuration; defaults to Warn on stderr.
class Logger {
 public:
  static Logger& instance() {
    // vodlint:allow(shared-mutable-global: configured once at startup; the
    // level read is a single enum load and log emission is test/CLI-side,
    // never inside a parallel region)
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void set_stream(std::ostream* stream) { stream_ = stream; }

  /// Installs a simulated-time source for line prefixes; pass nullptr (or
  /// an empty function) to restore clockless output.
  void set_clock(std::function<SimTime()> clock) {
    clock_ = std::move(clock);
  }

  void write(LogLevel level, const std::string& message) {
    if (level < level_ || stream_ == nullptr) return;
    if (clock_) *stream_ << '[' << clock_() << "] ";
    *stream_ << '[' << name(level) << "] " << message << '\n';
  }

 private:
  Logger() = default;

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace:
        return "trace";
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kInfo:
        return "info";
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kError:
        return "error";
      case LogLevel::kOff:
        return "off";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::ostream* stream_ = &std::cerr;
  std::function<SimTime()> clock_;
};

namespace log_detail {
inline void emit(LogLevel level, const std::ostringstream& os) {
  Logger::instance().write(level, os.str());
}
}  // namespace log_detail

}  // namespace vod

// Streaming log macros: VOD_LOG_INFO("chose server " << id << " cost " << c);
#define VOD_LOG_AT(vod_log_level, expr)                               \
  do {                                                                \
    if ((vod_log_level) >= ::vod::Logger::instance().level()) {       \
      std::ostringstream vod_log_os;                                  \
      vod_log_os << expr;                                             \
      ::vod::log_detail::emit((vod_log_level), vod_log_os);           \
    }                                                                 \
  } while (false)

#define VOD_LOG_TRACE(expr) VOD_LOG_AT(::vod::LogLevel::kTrace, expr)
#define VOD_LOG_DEBUG(expr) VOD_LOG_AT(::vod::LogLevel::kDebug, expr)
#define VOD_LOG_INFO(expr) VOD_LOG_AT(::vod::LogLevel::kInfo, expr)
#define VOD_LOG_WARN(expr) VOD_LOG_AT(::vod::LogLevel::kWarn, expr)
#define VOD_LOG_ERROR(expr) VOD_LOG_AT(::vod::LogLevel::kError, expr)
