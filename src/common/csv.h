// Minimal CSV emission for exporting bench/report data to other tools.
#pragma once

#include <string>
#include <vector>

namespace vod {

/// Builds RFC-4180-style CSV text: comma separated, fields containing
/// commas/quotes/newlines are double-quoted with quote doubling.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t row_count() const { return rows_; }
  [[nodiscard]] const std::string& str() const { return out_; }

  static std::string escape(const std::string& field);

 private:
  void append_line(const std::vector<std::string>& cells);

  std::size_t width_;
  std::size_t rows_ = 0;
  std::string out_;
};

}  // namespace vod
