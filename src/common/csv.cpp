#include "common/csv.h"

#include <stdexcept>

#include "common/contract.h"

namespace vod {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : width_(header.size()) {
  require(!header.empty(), "CsvWriter: empty header");
  append_line(header);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::append_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ += ',';
    out_ += escape(cells[i]);
  }
  out_ += '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  require(cells.size() == width_, "CsvWriter::add_row: width mismatch");
  append_line(cells);
  ++rows_;
}

}  // namespace vod
