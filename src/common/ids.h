// Strong identifier types shared across the library.
//
// Every entity in the system (network node, link, video title, disk, ...)
// is referred to by a small integer handle.  Using a distinct C++ type per
// entity kind turns "passed a link id where a node id was expected" into a
// compile error instead of a silent wrong answer.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <ostream>

namespace vod {

/// A strongly-typed integer identifier.  `Tag` is a phantom type used only
/// to make different id kinds incompatible with each other.
template <typename Tag>
class TaggedId {
 public:
  using underlying_type = std::uint32_t;

  /// Default-constructed ids are invalid; `valid()` returns false.
  constexpr TaggedId() = default;
  constexpr explicit TaggedId(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();
  underlying_type value_ = kInvalid;
};

struct NodeTag {};
struct LinkTag {};
struct VideoTag {};
struct DiskTag {};
struct SessionTag {};
struct ClientTag {};
struct FlowTag {};

/// A network node (a site in the backbone; in this paper every node hosts a
/// video server, so NodeId doubles as the server identifier).
using NodeId = TaggedId<NodeTag>;
/// An undirected network link between two nodes.
using LinkId = TaggedId<LinkTag>;
/// A video title in the catalog.
using VideoId = TaggedId<VideoTag>;
/// A physical disk within a server's disk array.
using DiskId = TaggedId<DiskTag>;
/// A client streaming session.
using SessionId = TaggedId<SessionTag>;
/// A client endpoint (identified to the service by its IP address).
using ClientId = TaggedId<ClientTag>;
/// An active bandwidth flow in the fluid network model.
using FlowId = TaggedId<FlowTag>;

}  // namespace vod

namespace std {
template <typename Tag>
struct hash<vod::TaggedId<Tag>> {
  size_t operator()(vod::TaggedId<Tag> id) const noexcept {
    return std::hash<typename vod::TaggedId<Tag>::underlying_type>{}(
        id.value());
  }
};
}  // namespace std
