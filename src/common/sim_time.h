// Simulation time.
//
// All simulated clocks in the library use SimTime: a strongly-typed count of
// seconds since the start of the simulated scenario.  Wall-clock time never
// appears inside the simulation.
#pragma once

#include <compare>
#include <iosfwd>
#include <ostream>

namespace vod {

/// A point in simulated time, in seconds from scenario start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Durations are plain doubles (seconds); points shift by durations.
  friend constexpr SimTime operator+(SimTime t, double seconds) {
    return SimTime{t.seconds_ + seconds};
  }
  friend constexpr SimTime operator-(SimTime t, double seconds) {
    return SimTime{t.seconds_ - seconds};
  }
  /// Difference of two points is a duration in seconds.
  friend constexpr double operator-(SimTime a, SimTime b) {
    return a.seconds_ - b.seconds_;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.seconds_ << "s";
  }

 private:
  double seconds_ = 0.0;
};

constexpr SimTime from_minutes(double minutes) {
  return SimTime{minutes * 60.0};
}
constexpr SimTime from_hours(double hours) { return SimTime{hours * 3600.0}; }

constexpr double minutes(double m) { return m * 60.0; }
constexpr double hours(double h) { return h * 3600.0; }

}  // namespace vod
