// Simulation time.
//
// All simulated clocks in the library use SimTime: a strongly-typed count of
// seconds since the start of the simulated scenario.  Durations crossing an
// API use the strongly-typed Duration; inside a function body plain double
// seconds remain fine for arithmetic.  Wall-clock time never appears inside
// the simulation.
#pragma once

#include <compare>
#include <iosfwd>
#include <ostream>

namespace vod {

/// A span of simulated time, in seconds.  Use this (not a raw double) for
/// any duration parameter crossing a module boundary — vodlint's
/// [raw-units] rule enforces it for `*_seconds`-named parameters.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.seconds_ + b.seconds_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.seconds_ - b.seconds_};
  }
  friend constexpr Duration operator*(Duration d, double s) {
    return Duration{d.seconds_ * s};
  }
  friend constexpr Duration operator*(double s, Duration d) {
    return Duration{d.seconds_ * s};
  }
  friend constexpr Duration operator/(Duration d, double s) {
    return Duration{d.seconds_ / s};
  }
  /// Ratio of two durations is dimensionless.
  friend constexpr double operator/(Duration a, Duration b) {
    return a.seconds_ / b.seconds_;
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.seconds_ << "s";
  }

 private:
  double seconds_ = 0.0;
};

/// A point in simulated time, in seconds from scenario start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Points shift by durations — strongly typed or plain double seconds.
  friend constexpr SimTime operator+(SimTime t, double seconds) {
    return SimTime{t.seconds_ + seconds};
  }
  friend constexpr SimTime operator-(SimTime t, double seconds) {
    return SimTime{t.seconds_ - seconds};
  }
  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.seconds_ + d.seconds()};
  }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.seconds_ - d.seconds()};
  }
  /// Difference of two points is a duration in seconds.
  friend constexpr double operator-(SimTime a, SimTime b) {
    return a.seconds_ - b.seconds_;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.seconds_ << "s";
  }

 private:
  double seconds_ = 0.0;
};

constexpr SimTime from_minutes(double minutes) {
  return SimTime{minutes * 60.0};
}
constexpr SimTime from_hours(double hours) { return SimTime{hours * 3600.0}; }

constexpr Duration minutes(double m) { return Duration{m * 60.0}; }
constexpr Duration hours(double h) { return Duration{h * 3600.0}; }

}  // namespace vod
