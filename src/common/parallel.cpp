#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contract.h"

namespace vod {
namespace {

/// Fixed-width fork-join pool.  Worker i owns chunk i + 1 of every job
/// (chunk 0 runs on the submitting thread), so dispatch is a generation
/// bump + wakeup with no queue and no stealing — which OS thread runs a
/// chunk is fixed by construction, and the chunks themselves are pure index
/// arithmetic, so scheduling can never leak into results.
class ForkJoinPool {
 public:
  explicit ForkJoinPool(std::size_t workers) {
    threads_.reserve(workers - 1);
    for (std::size_t i = 0; i + 1 < workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  ~ForkJoinPool() {
    {
      const std::lock_guard<std::mutex> hold(mu_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void run(std::size_t chunks, parallel_detail::ChunkFn fn, void* ctx) {
    {
      const std::lock_guard<std::mutex> hold(mu_);
      fn_ = fn;
      ctx_ = ctx;
      chunks_ = chunks;
      remaining_ = chunks - 1;
      ++generation_;
    }
    if (chunks > 1) work_ready_.notify_all();
    fn(ctx, 0);
    std::unique_lock<std::mutex> hold(mu_);
    job_done_.wait(hold, [this] { return remaining_ == 0; });
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      parallel_detail::ChunkFn fn = nullptr;
      void* ctx = nullptr;
      bool assigned = false;
      {
        std::unique_lock<std::mutex> hold(mu_);
        work_ready_.wait(hold,
                         [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        if (index + 1 < chunks_) {
          fn = fn_;
          ctx = ctx_;
          assigned = true;
        }
      }
      if (!assigned) continue;
      fn(ctx, index + 1);
      bool last = false;
      {
        const std::lock_guard<std::mutex> hold(mu_);
        last = --remaining_ == 0;
      }
      if (last) job_done_.notify_one();
    }
  }

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> threads_;  // vodlint:allow(raw-thread: the pool IS src/common/parallel)
  parallel_detail::ChunkFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t chunks_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Process-wide runtime.  The atomics let the hot serial check (workers == 1
/// -> run inline) cost two relaxed loads and no lock; the pool pointer is
/// published with release/acquire ordering through `workers_`.  Reconfiguring
/// while a region is in flight is excluded by the set_parallel_config
/// contract, not by locking.
struct Runtime {
  std::mutex config_mu;
  std::unique_ptr<ForkJoinPool> pool;
  std::atomic<std::size_t> min_fork_items{4096};
  std::atomic<unsigned> workers{1};
  // Fork/serial decision tallies.  Atomics only so TSan-built binaries that
  // snapshot them from tests stay clean; every increment happens on the
  // orchestrating thread, before workers wake.
  std::atomic<std::uint64_t> forks{0};
  std::atomic<std::uint64_t> serial_fallback{0};
};

// vodlint:allow(shared-mutable-global: the ParallelFor runtime itself — configured before regions run, synchronized via atomics + pool mutex)
Runtime& runtime() {
  // vodlint:allow(shared-mutable-global: single doorway singleton, see above)
  static Runtime instance;
  return instance;
}

}  // namespace

void set_parallel_config(const ParallelConfig& config) {
  Runtime& rt = runtime();
  const std::lock_guard<std::mutex> hold(rt.config_mu);
  std::size_t workers = config.workers == 0 ? 1 : config.workers;
  workers = std::min(workers, kMaxParallelWorkers);
  rt.min_fork_items.store(config.min_fork_items == 0 ? 1
                                                     : config.min_fork_items,
                          std::memory_order_relaxed);
  const std::size_t current = rt.workers.load(std::memory_order_relaxed);
  if (workers == current) return;
  // Quiesce: no regions are in flight (caller contract), so dropping the
  // published width to 1 before touching the pool keeps any racing reader
  // on the serial path.
  rt.workers.store(1, std::memory_order_release);
  rt.pool.reset();
  if (workers > 1) {
    rt.pool = std::make_unique<ForkJoinPool>(workers);
  }
  rt.workers.store(static_cast<unsigned>(workers), std::memory_order_release);
}

ParallelConfig parallel_config() {
  Runtime& rt = runtime();
  ParallelConfig config;
  config.workers = rt.workers.load(std::memory_order_acquire);
  config.min_fork_items = rt.min_fork_items.load(std::memory_order_relaxed);
  return config;
}

ParallelStats parallel_stats() {
  Runtime& rt = runtime();
  ParallelStats stats;
  stats.forks = rt.forks.load(std::memory_order_relaxed);
  stats.serial_fallback = rt.serial_fallback.load(std::memory_order_relaxed);
  return stats;
}

void reset_parallel_stats() {
  Runtime& rt = runtime();
  rt.forks.store(0, std::memory_order_relaxed);
  rt.serial_fallback.store(0, std::memory_order_relaxed);
}

namespace parallel_detail {

bool should_fork_items(std::size_t n, std::size_t items,
                       std::size_t& chunks) {
  Runtime& rt = runtime();
  const unsigned workers = rt.workers.load(std::memory_order_acquire);
  if (workers <= 1 ||
      items < rt.min_fork_items.load(std::memory_order_relaxed)) {
    rt.serial_fallback.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  chunks = std::min<std::size_t>(workers, n);
  if (chunks <= 1) {
    rt.serial_fallback.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  rt.forks.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool should_fork(std::size_t n, std::size_t& chunks) {
  return should_fork_items(n, n, chunks);
}

void run_chunks(std::size_t chunks, ChunkFn fn, void* ctx) {
  require(chunks >= 1, "parallel: run_chunks needs at least one chunk");
  if (chunks == 1) {
    fn(ctx, 0);
    return;
  }
  Runtime& rt = runtime();
  ForkJoinPool* pool = rt.pool.get();
  require(pool != nullptr,
      "parallel: run_chunks with multiple chunks but no pool configured");
  pool->run(chunks, fn, ctx);
}

}  // namespace parallel_detail

}  // namespace vod
