// Dense, generation-checked slot storage for the per-session/per-flow hot
// containers.
//
// The service hands out SessionIds and FlowIds monotonically and retires
// them roughly in arrival order, so a node-based std::map pays pointer
// chasing, per-entry heap allocation and O(log n) lookups for ordering the
// key sequence already provides.  SlotMap replaces it with two flat arrays:
//
//   * a slot vector holding the values contiguously (free slots recycled
//     through a free list, each reuse bumping a generation counter so stale
//     handles are rejected rather than aliased), and
//   * a sliding id->slot window: ids below the window base are known
//     retired, so the index occupies O(active + churn window) no matter how
//     many ids a long run burns through.
//
// Ordered iteration (ascending id — the order every determinism-sensitive
// float reduction in this library relies on; see DESIGN.md §12) is a linear
// walk of the window, not a tree traversal.  Ids are never reused by the
// callers, which keeps the id->slot window unambiguous; the generation
// counter guards the slot-addressed fast path (incidence indexes, handles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "common/contract.h"

namespace vod {

/// Dense storage keyed by a monotonically-issued TaggedId.  Insertion must
/// be in ascending id order (gaps allowed); erasure may happen in any
/// order.  Values live contiguously in recycled slots; lookups are O(1).
template <typename Id, typename T>
class SlotMap {
 public:
  using underlying = typename Id::underlying_type;
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  /// A slot-addressed reference that outlives the id lookup: stays valid
  /// while the entry lives, goes stale (get() == nullptr) once the entry is
  /// erased and the slot recycled.
  struct Handle {
    std::uint32_t slot = kNpos;
    std::uint32_t generation = 0;
  };

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool contains(Id id) const { return slot_index(id) != kNpos; }

  [[nodiscard]] T* find(Id id) {
    const std::uint32_t slot = slot_index(id);
    return slot == kNpos ? nullptr : &*slots_[slot].value;
  }
  [[nodiscard]] const T* find(Id id) const {
    const std::uint32_t slot = slot_index(id);
    return slot == kNpos ? nullptr : &*slots_[slot].value;
  }

  /// Lookup that must succeed; throws std::out_of_range with `what`.
  [[nodiscard]] T& at(Id id, const char* what) {
    T* value = find(id);
    require_found(value != nullptr, what);
    return *value;
  }
  [[nodiscard]] const T& at(Id id, const char* what) const {
    const T* value = find(id);
    require_found(value != nullptr, what);
    return *value;
  }

  /// Inserts a new entry.  `id` must be valid and strictly above every id
  /// ever inserted (the monotonic-issue contract).  Returns the stored
  /// value; the reference stays valid until the entry is erased (slots
  /// never move — only the id window does).
  T& insert(Id id, T value) {
    require(id.valid(), "SlotMap::insert: invalid id");
    if (size_ == 0 && window_.empty()) {
      window_start_ = id.value();
      head_ = 0;
    }
    ensure(id.value() >= window_start_,
        "SlotMap::insert: id below the retired window");
    const std::size_t pos =
        head_ + static_cast<std::size_t>(id.value() - window_start_);
    if (pos >= window_.size()) {
      window_.resize(pos + 1, kNpos);
    }
    ensure(window_[pos] == kNpos, "SlotMap::insert: duplicate id");
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    Slot& s = slots_[slot];
    s.id = id;
    s.value.emplace(std::move(value));
    window_[pos] = slot;
    ++size_;
    return *s.value;
  }

  /// Erases an entry (throws std::out_of_range if absent): the slot joins
  /// the free list with its generation bumped, and the id window advances
  /// past any fully-retired prefix.
  void erase(Id id) {
    const std::uint32_t slot = slot_index(id);
    require_found(slot != kNpos, "SlotMap::erase: unknown id");
    const std::size_t pos =
        head_ + static_cast<std::size_t>(id.value() - window_start_);
    Slot& s = slots_[slot];
    s.value.reset();
    s.id = Id{};
    ++s.generation;
    free_.push_back(slot);
    window_[pos] = kNpos;
    --size_;
    advance_window();
  }

  /// Visits entries in ascending id order: f(Id, T&).  The map must not be
  /// mutated during the walk.
  template <typename F>
  void for_each_ordered(F&& f) {
    for (std::size_t pos = head_; pos < window_.size(); ++pos) {
      const std::uint32_t slot = window_[pos];
      if (slot == kNpos) continue;
      f(slots_[slot].id, *slots_[slot].value);
    }
  }
  template <typename F>
  void for_each_ordered(F&& f) const {
    for (std::size_t pos = head_; pos < window_.size(); ++pos) {
      const std::uint32_t slot = window_[pos];
      if (slot == kNpos) continue;
      f(slots_[slot].id, *slots_[slot].value);
    }
  }

  /// Position-indexed window access for chunked parallel sweeps: offsets
  /// [0, window_span()) cover the live ids in ascending order, holes
  /// (retired ids) returning nullptr.  Splitting the offset range into
  /// contiguous chunks therefore preserves ascending-id order within and
  /// across chunks — the order for_each_ordered walks.  The map must not be
  /// mutated while offsets are outstanding.
  [[nodiscard]] T* at_offset(std::size_t offset, Id& id_out) {
    const std::uint32_t slot = window_[head_ + offset];
    if (slot == kNpos) return nullptr;
    id_out = slots_[slot].id;
    return &*slots_[slot].value;
  }
  [[nodiscard]] const T* at_offset(std::size_t offset, Id& id_out) const {
    const std::uint32_t slot = window_[head_ + offset];
    if (slot == kNpos) return nullptr;
    id_out = slots_[slot].id;
    return &*slots_[slot].value;
  }

  /// Dense slot index of a present id — stable for the entry's lifetime,
  /// so side indexes (the fluid incidence lists) can store it instead of a
  /// pointer.  Throws std::out_of_range if absent.
  [[nodiscard]] std::uint32_t slot_of(Id id) const {
    const std::uint32_t slot = slot_index(id);
    require_found(slot != kNpos, "SlotMap::slot_of: unknown id");
    return slot;
  }

  /// Direct slot access (no id lookup); the slot must hold a live entry.
  [[nodiscard]] T& slot_value(std::uint32_t slot) {
    return *slots_[slot].value;
  }
  [[nodiscard]] const T& slot_value(std::uint32_t slot) const {
    return *slots_[slot].value;
  }

  /// Generation-checked handle for a present id.
  [[nodiscard]] Handle handle_of(Id id) const {
    const std::uint32_t slot = slot_index(id);
    require_found(slot != kNpos, "SlotMap::handle_of: unknown id");
    return Handle{slot, slots_[slot].generation};
  }

  /// Resolves a handle; nullptr when the entry was erased (the slot's
  /// generation moved on) — never a pointer to an unrelated reused entry.
  [[nodiscard]] T* get(Handle handle) {
    if (handle.slot >= slots_.size()) return nullptr;
    Slot& s = slots_[handle.slot];
    if (s.generation != handle.generation || !s.value) return nullptr;
    return &*s.value;
  }

  // ---- introspection (tests / memory accounting) ----

  /// Width of the live id window (active entries + not-yet-compacted
  /// churn); the index memory is proportional to this, not to the total
  /// ids issued.
  [[nodiscard]] std::size_t window_span() const {
    return window_.size() - head_;
  }
  /// Slots ever allocated — bounded by the high-water mark of concurrent
  /// entries, not by total ids issued.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

 private:
  struct Slot {
    Id id{};
    std::uint32_t generation = 0;
    std::optional<T> value;
  };

  [[nodiscard]] std::uint32_t slot_index(Id id) const {
    if (!id.valid() || id.value() < window_start_) return kNpos;
    const std::size_t pos =
        head_ + static_cast<std::size_t>(id.value() - window_start_);
    return pos < window_.size() ? window_[pos] : kNpos;
  }

  void advance_window() {
    while (head_ < window_.size() && window_[head_] == kNpos) {
      ++head_;
      ++window_start_;
    }
    if (head_ == window_.size()) {
      window_.clear();
      head_ = 0;
      return;
    }
    // Amortized O(1) front trimming: drop the dead prefix once it
    // dominates the vector.
    if (head_ >= 1024 && head_ * 2 >= window_.size()) {
      window_.erase(window_.begin(),
                   window_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> window_;  // window: id -> slot (kNpos = absent)
  std::size_t head_ = 0;              // first live position in window_
  underlying window_start_ = 0;       // id value at window_[head_]
  std::size_t size_ = 0;
};

/// Chunked object pool: address-stable placement-new allocation with a free
/// list, for objects that capture `this` in callbacks (stream::Session) and
/// therefore cannot live inside a reallocating vector.  Replaces one
/// operator-new per object with one allocation per kChunkObjects.
template <typename T>
class ObjectPool {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "ObjectPool: over-aligned types need aligned chunks");

 public:
  static constexpr std::size_t kChunkObjects = 256;

  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Destroying the pool frees the chunks; all objects must have been
  /// destroyed first (their owners hold Ptr, whose deleter returns here).
  ~ObjectPool() = default;

  template <typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    if (free_ == nullptr) grow();
    FreeNode* node = free_;
    free_ = node->next;
    T* object = new (node) T(std::forward<Args>(args)...);
    ++live_;
    return object;
  }

  void destroy(T* object) noexcept {
    object->~T();
    auto* node = reinterpret_cast<FreeNode*>(object);
    node->next = free_;
    free_ = node;
    --live_;
  }

  struct Deleter {
    ObjectPool* pool = nullptr;
    void operator()(T* object) const noexcept { pool->destroy(object); }
  };
  /// unique_ptr returning to this pool on destruction.
  using Ptr = std::unique_ptr<T, Deleter>;

  template <typename... Args>
  [[nodiscard]] Ptr make(Args&&... args) {
    return Ptr{create(std::forward<Args>(args)...), Deleter{this}};
  }

  [[nodiscard]] std::size_t live_count() const { return live_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  union CellStorage {
    FreeNode node;
    alignas(T) std::byte storage[sizeof(T)];
  };

  void grow() {
    auto chunk = std::make_unique<CellStorage[]>(kChunkObjects);
    for (std::size_t i = kChunkObjects; i-- > 0;) {
      chunk[i].node.next = free_;
      free_ = &chunk[i].node;
    }
    chunks_.push_back(std::move(chunk));
  }

  std::vector<std::unique_ptr<CellStorage[]>> chunks_;
  FreeNode* free_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace vod
