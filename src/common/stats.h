// Small statistics helpers for the benches and reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/contract.h"

namespace vod {

/// Streaming accumulator: count / mean / min / max / stddev without
/// storing samples (Welford's algorithm).
class OnlineStats {
 public:
  void add(double value) {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = count_ == 1 ? value : std::max(max_, value);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Population variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// THE nearest-rank rule (DESIGN.md §16), shared by SampleSet::quantile
/// (sample-backed report percentiles) and obs::bucket_quantile
/// (bucket-backed histogram/SLO percentiles): the 1-based rank of the q-th
/// quantile among `count` ordered observations — ceil(q * count), clamped
/// to at least 1.  One implementation so the two percentile families can
/// never drift apart.
[[nodiscard]] inline std::size_t nearest_rank(std::size_t count, double q) {
  ensure(count > 0, "nearest_rank: no observations");
  require(!(q < 0.0 || q > 1.0), "nearest_rank: q outside [0,1]");
  const auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(count)));
  return rank == 0 ? 1 : rank;
}

/// Stores samples for exact quantiles (benches have small sample counts).
class SampleSet {
 public:
  void add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Quantile by nearest-rank (the shared rule above); q in [0, 1].
  /// Throws when empty.
  [[nodiscard]] double quantile(double q) const {
    ensure(!samples_.empty(), "SampleSet::quantile: no samples");
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    return samples_[nearest_rank(samples_.size(), q) - 1];
  }

  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace vod
