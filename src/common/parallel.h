// Deterministic fork-join parallelism (the "ParallelFor" pilot kernel).
//
// The repo's reproducibility guarantee (DESIGN.md §9) is that every run is a
// bit-identical function of its seeds — a guarantee most thread pools break
// instantly through nondeterministic work stealing and unordered floating-
// point reductions.  This runtime is the disciplined alternative that the
// parallel-readiness analyzer (vodlint v2, DESIGN.md §14) gates the rest of
// the migration on:
//
//   * Fixed worker count from configuration (set_parallel_config), never
//     from the machine: results must not depend on where the binary runs.
//   * Static chunking: [0, n) splits into exactly `chunks` contiguous
//     ranges by pure index arithmetic.  Which OS thread executes a chunk is
//     irrelevant — every chunk writes only chunk-owned state.
//   * Merges in chunk-index order, and only exact-associative reductions
//     (min/max, integer sums).  Floating-point *additions* must not be
//     reduced across chunks unless the serial code sums per-chunk too.
//   * Serial default (workers == 1): the body runs inline on the calling
//     thread over the whole range — byte-identical to the pre-parallel
//     code, and the ten paper benches are frozen against exactly that.
//
// Contract for bodies (checked by vodlint's [parallel-region-write] rule —
// annotate call sites with `// vodlint: parallel-region`):
//   * A body may read any shared state that is not mutated during the
//     region, and may write only state indexed by the elements it owns.
//   * No allocation-free-threading hazards: bodies must not touch lazily
//     built mutable caches (e.g. FluidNetwork::background()'s per-instant
//     cache) — prefetch them serially before forking.
//   * Bodies must not throw: a worker thread has nowhere to propagate.
//
// Direct std::thread / std::async use anywhere else in the tree is a
// vodlint [raw-thread] violation; this header is the single doorway.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace vod {

/// Hard ceiling on configured workers (static partial-result buffers in the
/// reduce helpers are sized by it; far above any sane shard count).
inline constexpr std::size_t kMaxParallelWorkers = 64;

struct ParallelConfig {
  /// Fork-join width.  1 (the default) runs everything inline/serial; the
  /// value is a *configuration* input, deliberately never derived from the
  /// hardware, so a replay on any machine partitions work identically.
  unsigned workers = 1;
  /// Ranges smaller than this run inline even when workers > 1: forking a
  /// handful of items costs more than it wins, and the serial path is
  /// always bit-identical anyway.  Tests drop it to 1 to force real forks
  /// on tiny fixtures.
  std::size_t min_fork_items = 4096;
};

/// Installs the process-wide configuration.  Must not be called while a
/// parallel region is in flight (single-threaded orchestration only —
/// simulation setup, bench flag parsing, test fixtures).  Worker counts are
/// clamped to [1, kMaxParallelWorkers]; shrinking to 1 joins and destroys
/// the pool.
///
/// Call sites should not install ad-hoc configs to tune min_fork_items:
/// the one knob lives in sim::SimulationConfig (sim/simulation.h), which
/// benches and tests hand to sim::set_simulation_config so every region in
/// the process sweeps together.
void set_parallel_config(const ParallelConfig& config);

[[nodiscard]] ParallelConfig parallel_config();

/// Fork/serial-path decision counters, mirrored into the MetricsRegistry
/// (parallel.forks / parallel.serial_fallback) so the EXPERIMENTS speedup
/// tables can confirm the grain threshold actually forks.  Counts are
/// observe-only — they never feed back into simulation state — and are
/// bumped only from the orchestrating thread (should_fork runs before any
/// workers are woken).
struct ParallelStats {
  std::uint64_t forks = 0;            // regions dispatched to the pool
  std::uint64_t serial_fallback = 0;  // regions run inline (width/grain)
};

[[nodiscard]] ParallelStats parallel_stats();

/// Resets the fork/serial counters to zero (bench section boundaries).
void reset_parallel_stats();

namespace parallel_detail {

using ChunkFn = void (*)(void* ctx, std::size_t chunk);

/// Executes fn(ctx, c) for c in [0, chunks) across the configured pool
/// (chunk 0 on the calling thread) and joins.  chunks must be >= 1 and
/// <= configured workers.
void run_chunks(std::size_t chunks, ChunkFn fn, void* ctx);

/// Static chunk boundary: pure index arithmetic, so the partition depends
/// only on (n, chunks) — never on scheduling.
inline std::size_t chunk_bound(std::size_t n, std::size_t chunks,
                               std::size_t c) {
  return n / chunks * c + std::min(c, n % chunks);
}

/// True when a range of `n` items should fork under the current config;
/// fills `chunks` with the partition width.
bool should_fork(std::size_t n, std::size_t& chunks);

/// Fork decision where the grain is measured in `items` but the partition
/// covers `n` outer slots (the epoch core partitions a fixed shard array
/// whose shards each carry many events; comparing the shard count against
/// min_fork_items would starve it).  `chunks` is capped by both the
/// configured workers and `n`.
bool should_fork_items(std::size_t n, std::size_t items, std::size_t& chunks);

}  // namespace parallel_detail

/// Deterministic fork-join map: body(begin, end) over contiguous chunks
/// covering [0, n).  Serial (one inline body(0, n) call) when workers == 1
/// or n < min_fork_items; the parallel split is pure index arithmetic, so
/// any body honouring the ownership contract above produces bit-identical
/// state at every worker count.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  if (n == 0) return;
  std::size_t chunks = 1;
  if (!parallel_detail::should_fork(n, chunks)) {
    body(std::size_t{0}, n);
    return;
  }
  struct Ctx {
    Body* body;
    std::size_t n;
    std::size_t chunks;
  } ctx{&body, n, chunks};
  parallel_detail::run_chunks(
      chunks,
      [](void* opaque, std::size_t c) {
        auto* context = static_cast<Ctx*>(opaque);
        const std::size_t begin =
            parallel_detail::chunk_bound(context->n, context->chunks, c);
        const std::size_t end =
            parallel_detail::chunk_bound(context->n, context->chunks, c + 1);
        (*context->body)(begin, end);
      },
      &ctx);
}

/// parallel_for with the fork decision weighed by `items` instead of `n`:
/// the partition still splits [0, n) into contiguous chunks, but the grain
/// test asks whether the *work behind* those slots (e.g. the events behind
/// n shards) justifies waking the pool.  parallel_for(n, body) is exactly
/// parallel_for_items(n, n, body).
template <typename Body>
void parallel_for_items(std::size_t n, std::size_t items, Body&& body) {
  if (n == 0) return;
  std::size_t chunks = 1;
  if (!parallel_detail::should_fork_items(n, items, chunks)) {
    body(std::size_t{0}, n);
    return;
  }
  struct Ctx {
    Body* body;
    std::size_t n;
    std::size_t chunks;
  } ctx{&body, n, chunks};
  parallel_detail::run_chunks(
      chunks,
      [](void* opaque, std::size_t c) {
        auto* context = static_cast<Ctx*>(opaque);
        const std::size_t begin =
            parallel_detail::chunk_bound(context->n, context->chunks, c);
        const std::size_t end =
            parallel_detail::chunk_bound(context->n, context->chunks, c + 1);
        (*context->body)(begin, end);
      },
      &ctx);
}

/// Deterministic min-reduction: chunk_min(begin, end, init) -> double runs
/// per chunk; partials merge with std::min in chunk-index order.  min is
/// exact on doubles, so the result is bit-identical to the serial
/// chunk_min(0, n, init) at every worker count.
template <typename ChunkMin>
double parallel_min(std::size_t n, double init, ChunkMin&& chunk_min) {
  if (n == 0) return init;
  std::size_t chunks = 1;
  if (!parallel_detail::should_fork(n, chunks)) {
    return chunk_min(std::size_t{0}, n, init);
  }
  double partial[kMaxParallelWorkers];
  struct Ctx {
    ChunkMin* chunk_min;
    double* partial;
    double init;
    std::size_t n;
    std::size_t chunks;
  } ctx{&chunk_min, partial, init, n, chunks};
  parallel_detail::run_chunks(
      chunks,
      [](void* opaque, std::size_t c) {
        auto* context = static_cast<Ctx*>(opaque);
        const std::size_t begin =
            parallel_detail::chunk_bound(context->n, context->chunks, c);
        const std::size_t end =
            parallel_detail::chunk_bound(context->n, context->chunks, c + 1);
        context->partial[c] =
            (*context->chunk_min)(begin, end, context->init);
      },
      &ctx);
  double out = init;
  for (std::size_t c = 0; c < chunks; ++c) out = std::min(out, partial[c]);
  return out;
}

}  // namespace vod
