#include "service/spec.h"

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "common/contract.h"

namespace vod::service {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  fail_require("line " + std::to_string(line) + ": " + message);
}

/// Splits a line into tokens; double-quoted tokens may contain spaces.
std::vector<std::string> tokenize(const std::string& line, int line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;  // comment to end of line
    if (line[i] == '"') {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string::npos) fail(line_no, "unterminated quote");
      tokens.push_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end])) &&
             line[end] != '#') {
        ++end;
      }
      tokens.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

double parse_number(const std::string& token, int line_no,
                    const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    require(used == token.size(), "trailing");
    return value;
  } catch (const std::exception&) {
    fail(line_no, std::string("bad ") + what + " '" + token + "'");
  }
}

/// Parses "key=value", checking the key.
double parse_kv(const std::string& token, const char* key, int line_no) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) {
    fail(line_no, "expected " + prefix + "<number>, got '" + token + "'");
  }
  return parse_number(token.substr(prefix.size()), line_no, key);
}

}  // namespace

ServiceSpec parse_service_spec(const std::string& text) {
  ServiceSpec spec;
  std::map<std::string, NodeId> nodes;
  std::map<std::string, std::size_t> titles;  // -> index into spec.videos

  auto node_of = [&](const std::string& name, int line_no) {
    const auto it = nodes.find(name);
    if (it == nodes.end()) fail(line_no, "unknown node '" + name + "'");
    return it->second;
  };

  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line, line_no);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "node") {
      if (tokens.size() != 2) fail(line_no, "usage: node <name>");
      if (nodes.contains(tokens[1])) {
        fail(line_no, "duplicate node '" + tokens[1] + "'");
      }
      nodes.emplace(tokens[1], spec.topology.add_node(tokens[1]));
    } else if (keyword == "link") {
      if (tokens.size() != 4) {
        fail(line_no, "usage: link <a> <b> <capacity Mbps>");
      }
      const NodeId a = node_of(tokens[1], line_no);
      const NodeId b = node_of(tokens[2], line_no);
      const double capacity = parse_number(tokens[3], line_no, "capacity");
      if (capacity <= 0.0) fail(line_no, "capacity must be positive");
      spec.topology.add_link(a, b, Mbps{capacity});
    } else if (keyword == "server_defaults" || keyword == "server") {
      // server_defaults disks=N disk_mb=M  — all servers
      // server <node> disks=N disk_mb=M   — one node's override
      const bool per_node = keyword == "server";
      const std::size_t expected = per_node ? 4u : 3u;
      if (tokens.size() != expected) {
        fail(line_no, per_node
                          ? "usage: server <node> disks=<n> disk_mb=<mb>"
                          : "usage: server_defaults disks=<n> disk_mb=<mb>");
      }
      const std::size_t base = per_node ? 2 : 1;
      const double disks = parse_kv(tokens[base], "disks", line_no);
      const double disk_mb = parse_kv(tokens[base + 1], "disk_mb", line_no);
      if (disks < 1.0 || disks != static_cast<int>(disks)) {
        fail(line_no, "disks must be a positive integer");
      }
      if (disk_mb <= 0.0) fail(line_no, "disk_mb must be positive");
      ServerSetup setup;
      setup.disk_count = static_cast<std::size_t>(disks);
      setup.disk_profile.capacity = MegaBytes{disk_mb};
      if (per_node) {
        spec.options.server_overrides[node_of(tokens[1], line_no)] = setup;
      } else {
        setup.disk_profile.transfer_rate =
            spec.options.server.disk_profile.transfer_rate;
        spec.options.server = setup;
      }
    } else if (keyword == "cluster_mb") {
      if (tokens.size() != 2) fail(line_no, "usage: cluster_mb <mb>");
      const double mb = parse_number(tokens[1], line_no, "cluster size");
      if (mb <= 0.0) fail(line_no, "cluster size must be positive");
      spec.options.cluster_size = MegaBytes{mb};
    } else if (keyword == "snmp_interval") {
      if (tokens.size() != 2) fail(line_no, "usage: snmp_interval <s>");
      const double s = parse_number(tokens[1], line_no, "interval");
      if (s <= 0.0) fail(line_no, "interval must be positive");
      spec.options.snmp_interval_seconds = s;
    } else if (keyword == "parity") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        fail(line_no, "usage: parity on|off");
      }
      spec.options.server.striping = tokens[1] == "on"
                                         ? storage::StripingMode::kParity
                                         : storage::StripingMode::kPlain;
    } else if (keyword == "dma_threshold") {
      if (tokens.size() != 2) fail(line_no, "usage: dma_threshold <n>");
      const double n = parse_number(tokens[1], line_no, "threshold");
      if (n < 0.0 || n != static_cast<std::uint64_t>(n)) {
        fail(line_no, "threshold must be a non-negative integer");
      }
      spec.options.dma.admission_threshold =
          static_cast<std::uint64_t>(n);
    } else if (keyword == "subnet") {
      if (tokens.size() != 3) fail(line_no, "usage: subnet <cidr> <node>");
      node_of(tokens[2], line_no);  // validate now
      spec.subnets.emplace_back(tokens[1], tokens[2]);
    } else if (keyword == "video") {
      if (tokens.size() != 4) {
        fail(line_no, "usage: video \"title\" size_mb=<mb> bitrate=<Mbps>");
      }
      if (titles.contains(tokens[1])) {
        fail(line_no, "duplicate title '" + tokens[1] + "'");
      }
      const double size_mb = parse_kv(tokens[2], "size_mb", line_no);
      const double bitrate = parse_kv(tokens[3], "bitrate", line_no);
      if (size_mb <= 0.0 || bitrate <= 0.0) {
        fail(line_no, "size and bitrate must be positive");
      }
      titles.emplace(tokens[1], spec.videos.size());
      spec.videos.push_back(ServiceSpec::VideoEntry{
          tokens[1], MegaBytes{size_mb}, Mbps{bitrate}});
    } else if (keyword == "place") {
      if (tokens.size() != 3) fail(line_no, "usage: place \"title\" <node>");
      if (!titles.contains(tokens[1])) {
        fail(line_no, "unknown title '" + tokens[1] + "'");
      }
      node_of(tokens[2], line_no);
      spec.placements.emplace_back(tokens[1], tokens[2]);
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  // `parity` is deployment-wide: apply it to per-node overrides too,
  // regardless of the order the lines appeared in.
  for (auto& [node, setup] : spec.options.server_overrides) {
    setup.striping = spec.options.server.striping;
  }
  return spec;
}

std::map<std::string, VideoId> initialize_from_spec(const ServiceSpec& spec,
                                                    VodService& service) {
  std::map<std::string, VideoId> videos;
  for (const ServiceSpec::VideoEntry& entry : spec.videos) {
    videos.emplace(entry.title, service.add_video(entry.title, entry.size,
                                                  entry.bitrate));
  }
  for (const auto& [cidr, node_name] : spec.subnets) {
    const auto node = service.topology().find_node(node_name);
    require(
        node,
        [&] { return "initialize_from_spec: service topology lacks node " + node_name; });
    service.ip_directory().add_subnet(cidr, *node);
  }
  for (const auto& [title, node_name] : spec.placements) {
    const auto node = service.topology().find_node(node_name);
    require(
        node,
        [&] { return "initialize_from_spec: service topology lacks node " + node_name; });
    service.place_initial_copy(*node, videos.at(title));
  }
  return videos;
}

}  // namespace vod::service
