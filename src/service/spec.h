// Declarative service initialization.
//
// The paper initializes the service through administrator web forms: link
// bandwidths, the titles on each server, subnets.  This module is that data
// path as a parseable text format, so whole deployments are described in
// one artifact:
//
//   # GRNET-like deployment
//   node athens
//   node patra
//   link athens patra 2          # capacity in Mbps
//   server_defaults disks=8 disk_mb=9000
//   cluster_mb 50
//   snmp_interval 90
//   dma_threshold 3            # requests before a title is cached locally
//   parity on                  # RAID-5-style striping, every server
//   subnet 150.140.0.0/16 patra
//   video "big buck bunny" size_mb=700 bitrate=2
//   place "big buck bunny" athens
//
// parse_service_spec() validates the whole file (unknown node names, bad
// numbers, duplicate titles) and reports errors with line numbers;
// initialize_from_spec() replays the catalog/subnet/placement entries onto
// a constructed VodService.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "service/vod_service.h"

namespace vod::service {

/// A parsed deployment description.
struct ServiceSpec {
  net::Topology topology;
  ServiceOptions options;

  struct VideoEntry {
    std::string title;
    MegaBytes size;
    Mbps bitrate;
  };
  std::vector<VideoEntry> videos;
  /// (cidr, node name)
  std::vector<std::pair<std::string, std::string>> subnets;
  /// (title, node name)
  std::vector<std::pair<std::string, std::string>> placements;
};

/// Parses the text format above; throws std::invalid_argument with
/// "line N: ..." messages on any error.
ServiceSpec parse_service_spec(const std::string& text);

/// Registers the spec's videos, subnets and initial placements on a
/// service that was constructed over the spec's topology and options.
/// Returns the title -> VideoId mapping.
std::map<std::string, VideoId> initialize_from_spec(const ServiceSpec& spec,
                                                    VodService& service);

}  // namespace vod::service
