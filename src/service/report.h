// Service-level QoS reporting.
//
// Aggregates every session a VodService has handled into the numbers an
// operator (or a bench) wants: completion/failure counts, startup and
// download statistics, rebuffering, switching, and how many sessions met
// the paper's QoS floor.  Renders as an aligned table or CSV.
#pragma once

#include <array>
#include <string>

#include "common/stats.h"
#include "common/units.h"
#include "common/user_class.h"
#include "service/vod_service.h"
#include "vra/vra.h"

namespace vod::service {

/// The aggregate view of a service's session history.
struct ServiceReport {
  std::size_t sessions = 0;
  std::size_t finished = 0;
  std::size_t failed = 0;
  std::size_t in_flight = 0;
  std::size_t qos_ok = 0;     // finished sessions meeting the floor
  Mbps qos_floor{0.0};

  SampleSet startup_seconds;
  SampleSet download_seconds;
  double total_rebuffer_seconds = 0.0;
  int total_switches = 0;
  int total_stall_retries = 0;

  /// Incremental LVN engine counters (graph/SPT cache effectiveness).
  vra::VraCacheStats vra_cache;
  bool vra_cache_enabled = false;

  [[nodiscard]] double qos_ok_share() const {
    return finished > 0
               ? static_cast<double>(qos_ok) / static_cast<double>(finished)
               : 0.0;
  }
};

/// Scans all sessions of `service`; `qos_floor` is the minimum decent rate
/// (use each title's own bitrate via per-session checks when 0).
ServiceReport build_report(const VodService& service, Mbps qos_floor);

/// The failure-handling view of a service's session history: how many
/// user requests survived the faults, how fast failovers were, and which
/// recovery mechanisms did the work.  Sessions superseded by a service-
/// level retry contribute their failover latencies but not an outcome —
/// the request's outcome is its final attempt's.
struct ResilienceReport {
  std::size_t sessions = 0;   // session objects, retry attempts included
  std::size_t requests = 0;   // user-visible requests (minus superseded)
  std::size_t finished = 0;
  std::size_t failed = 0;     // failed with an explicit failure_reason
  std::size_t hung = 0;       // neither finished nor failed — must be 0
  std::size_t qos_ok = 0;
  Mbps qos_floor{0.0};

  /// Requests that recorded at least one failover, and how many of those
  /// still finished.
  std::size_t sessions_with_failover = 0;
  std::size_t survived_failover = 0;

  int proactive_failovers = 0;
  int stall_retries = 0;
  std::size_t service_retries = 0;
  std::uint64_t degraded_selections = 0;

  /// Fault notification -> streaming again, across all sessions.
  SampleSet failover_latency_seconds;

  /// Rebuffer seconds per user-visible request (zero included): p50/p99
  /// make degradation visible even when availability holds — a storm the
  /// service "survives" by stalling everyone shows up here first.
  SampleSet stall_seconds;

  /// Per-class SLA slice (set when the service ran with qos enabled).
  struct ClassSla {
    /// Session-derived outcomes (superseded retry attempts excluded).
    std::size_t requests = 0;
    std::size_t finished = 0;
    std::size_t failed = 0;
    /// Sessions of this class aborted by the preemption planner, retried
    /// attempts included — every sacrifice counts once.
    std::size_t preempted = 0;
    /// Front-door admission counters (from the qos.<class>.* series).
    std::uint64_t admission_requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t no_server = 0;
    SampleSet stall_seconds;
    SampleSet failover_latency_seconds;

    [[nodiscard]] double availability() const {
      return requests > 0 ? static_cast<double>(finished) /
                                static_cast<double>(requests)
                          : 0.0;
    }
    [[nodiscard]] double admit_rate() const {
      return admission_requests > 0
                 ? static_cast<double>(admitted) /
                       static_cast<double>(admission_requests)
                 : 0.0;
    }
  };
  bool classed = false;
  std::array<ClassSla, kUserClassCount> by_class{};

  /// Finished requests over all requests — the headline availability.
  [[nodiscard]] double availability() const {
    return requests > 0
               ? static_cast<double>(finished) / static_cast<double>(requests)
               : 0.0;
  }
};

ResilienceReport build_resilience_report(const VodService& service,
                                         Mbps qos_floor);

/// Human-readable summary table.
std::string format_resilience_report(const ResilienceReport& report);

/// Human-readable summary table.
std::string format_report(const ServiceReport& report);

/// One CSV row per session: id, home, title, outcome, startup, download,
/// rebuffer, switches, retries, mean rate.
std::string report_sessions_csv(const VodService& service);

}  // namespace vod::service
