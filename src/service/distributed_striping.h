// Server-level striping — the paper's future-work extension.
//
// "We could have even better results if the various videos were stripped
//  not on the hard disks of one server but of different servers according
//  to the popularity.  This means that the most popular technique ... will
//  not be imposed on whole videos but on video strips."
//
// DistributedStripePlacer assigns each video's strips cyclically across a
// popularity-ordered subset of servers; StripedSelectionPolicy routes
// cluster k to the server holding strip k (falling back to the VRA when the
// strip's holder is offline).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "db/database.h"
#include "net/topology.h"
#include "stream/policy.h"
#include "vra/vra.h"

namespace vod::service {

/// A video's strip-to-server assignment.
struct StripeAssignment {
  VideoId video;
  /// Server holding strip k is servers[k % servers.size()].
  std::vector<NodeId> servers;
};

/// Plans strip placement: the `replica_count` servers chosen per title are
/// rotated with the title's popularity rank so popular titles' strips are
/// spread across different starting servers (load dispersion).
class DistributedStripePlacer {
 public:
  /// `servers` in any fixed order; `replica_count` in [1, servers.size()].
  DistributedStripePlacer(std::vector<NodeId> servers,
                          std::size_t replica_count);

  /// Assigns strips for `videos` given in popularity-rank order.
  [[nodiscard]] std::vector<StripeAssignment> plan(
      const std::vector<VideoId>& videos) const;

 private:
  std::vector<NodeId> servers_;
  std::size_t replica_count_;
};

/// Routes each cluster to the server assigned to that strip, over the
/// current least-LVN path; unknown videos fall back to the inner VRA.
class StripedSelectionPolicy final : public stream::ServerSelectionPolicy {
 public:
  /// `vra` must outlive the policy.
  StripedSelectionPolicy(const vra::Vra& vra,
                         std::vector<StripeAssignment> assignments);

  [[nodiscard]] std::optional<stream::Selection> select(
      NodeId home, VideoId video) override;
  [[nodiscard]] std::optional<stream::Selection> select_cluster(
      NodeId home, VideoId video, std::size_t cluster_index) override;
  [[nodiscard]] const char* name() const override {
    return "striped-servers";
  }

 private:
  const vra::Vra& vra_;
  std::map<VideoId, StripeAssignment> assignments_;
};

}  // namespace vod::service
