#include "service/audit.h"

#include <stdexcept>

#include "common/contract.h"
#include "common/table.h"

namespace vod::service {

DecisionAudit::DecisionAudit(std::size_t capacity) : capacity_(capacity) {
  require(capacity != 0, "DecisionAudit: capacity must be positive");
}

void DecisionAudit::record(AuditEntry entry) {
  ++recorded_;
  entries_.push_back(entry);
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::string DecisionAudit::format_recent(
    std::size_t count,
    const std::function<std::string(NodeId)>& node_name) const {
  TextTable table{{"t (s)", "home", "video", "cluster", "served by",
                   "cost", "hops"}};
  const std::size_t first =
      entries_.size() > count ? entries_.size() - count : 0;
  for (std::size_t i = first; i < entries_.size(); ++i) {
    const AuditEntry& entry = entries_[i];
    table.add_row({TextTable::num(entry.at.seconds(), 1),
                   node_name(entry.home),
                   std::to_string(entry.video.value()),
                   std::to_string(entry.cluster_index),
                   entry.satisfied ? node_name(entry.server) : "(none)",
                   entry.satisfied ? TextTable::num(entry.path_cost, 4)
                                   : "-",
                   entry.satisfied ? std::to_string(entry.hop_count)
                                   : "-"});
  }
  return table.render();
}

std::optional<stream::Selection> AuditingPolicy::select_cluster(
    NodeId home, VideoId video, std::size_t cluster_index) {
  auto selection = inner_.select_cluster(home, video, cluster_index);
  AuditEntry entry;
  entry.at = sim_.now();
  entry.home = home;
  entry.video = video;
  entry.cluster_index = cluster_index;
  entry.satisfied = selection.has_value();
  if (selection) {
    entry.server = selection->server;
    entry.path_cost = selection->path.cost;
    entry.hop_count = selection->path.hop_count();
  }
  audit_.record(entry);
  return selection;
}

}  // namespace vod::service
