// Admission control — the enforcement half of the paper's QoS goal.
//
// "What we want to achieve by enforcing our routing algorithm is to provide
//  a minimum QoS, which should be equal to the minimum video frame rate for
//  which a video can be considered decent."
//
// Routing alone cannot guarantee that: if every path to every holder is
// saturated, the stream will rebuffer no matter which one the VRA picks.
// The admission controller closes the loop by checking, against the same
// limited-access statistics the VRA uses, that the chosen path has enough
// residual bandwidth to sustain the title's bitrate before the session is
// allowed to start.
#pragma once

#include <array>

#include "common/units.h"
#include "common/user_class.h"
#include "db/database.h"
#include "routing/path.h"
#include "vra/vra.h"

namespace vod::service {

/// Admission policy knobs.
struct AdmissionOptions {
  /// Admit iff path residual >= headroom * title bitrate.  1.0 = exactly
  /// sustainable; >1 keeps slack for SNMP staleness and jitter.
  double required_headroom = 1.0;
  /// Per-class multipliers on `required_headroom`, indexed by
  /// class_index().  Lower classes demand more slack (their streams are
  /// the first shed, so admitting them right at the edge just converts
  /// admission into a deferred stall); premium can run closer to the
  /// line.  All-ones = every class admitted exactly like the classless
  /// check.
  std::array<double, kUserClassCount> class_headroom{1.0, 1.0, 1.0};
};

/// Stateless residual-bandwidth check against the limited-access view.
class AdmissionController {
 public:
  explicit AdmissionController(db::LimitedAccessView view,
                               AdmissionOptions options = {});

  /// Smallest (total - used) along the path's links; local (empty) paths
  /// report the home server's access bandwidth.  Uses the database's SNMP
  /// statistics — the same slightly stale picture the VRA routes on.
  [[nodiscard]] Mbps path_residual(const routing::Path& path,
                                   NodeId home) const;

  /// Should this VRA decision be admitted for a title of `bitrate`?
  /// Locally served sessions are always admitted (no network involved).
  [[nodiscard]] bool admit(const vra::Decision& decision,
                           Mbps bitrate) const;

  /// Class-aware variant: the path must clear this class's headroom
  /// (required_rate below).  kStandard with all-ones class_headroom is
  /// exactly the classless check.
  [[nodiscard]] bool admit(const vra::Decision& decision, Mbps bitrate,
                           UserClass cls) const;

  /// Residual bandwidth the path must show for a `cls` title of `bitrate`:
  /// required_headroom x class_headroom[cls] x bitrate.  Also the deficit
  /// target the preemption planner must free on each short link.
  [[nodiscard]] Mbps required_rate(Mbps bitrate, UserClass cls) const;

  [[nodiscard]] const AdmissionOptions& options() const { return options_; }

 private:
  db::LimitedAccessView view_;
  AdmissionOptions options_;
};

}  // namespace vod::service
