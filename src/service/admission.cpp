#include "service/admission.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/contract.h"

namespace vod::service {

AdmissionController::AdmissionController(db::LimitedAccessView view,
                                         AdmissionOptions options)
    : view_(view), options_(options) {
  require(!(options.required_headroom <= 0.0),
      "AdmissionController: headroom must be positive");
  for (const double h : options.class_headroom) {
    require(!(h <= 0.0),
        "AdmissionController: class headroom must be positive");
  }
}

Mbps AdmissionController::path_residual(const routing::Path& path,
                                        NodeId home) const {
  if (path.links.empty()) {
    return view_.server(home).config.access_bandwidth;
  }
  Mbps residual{std::numeric_limits<double>::infinity()};
  for (const LinkId link : path.links) {
    const db::LinkRecord& record = view_.link(link);
    if (!record.online) return Mbps{0.0};
    const Mbps free{std::max(
        0.0, (record.total_bandwidth - record.used_bandwidth).value())};
    residual = std::min(residual, free);
  }
  return residual;
}

bool AdmissionController::admit(const vra::Decision& decision,
                                Mbps bitrate) const {
  require(!(bitrate.value() <= 0.0), "AdmissionController: bad bitrate");
  if (decision.served_locally) return true;
  const Mbps residual = path_residual(decision.path, decision.path.source());
  return residual.value() >= options_.required_headroom * bitrate.value();
}

bool AdmissionController::admit(const vra::Decision& decision, Mbps bitrate,
                                UserClass cls) const {
  require(!(bitrate.value() <= 0.0), "AdmissionController: bad bitrate");
  if (decision.served_locally) return true;
  const Mbps residual = path_residual(decision.path, decision.path.source());
  return residual.value() >= required_rate(bitrate, cls).value();
}

Mbps AdmissionController::required_rate(Mbps bitrate, UserClass cls) const {
  return Mbps{options_.required_headroom *
              options_.class_headroom[class_index(cls)] * bitrate.value()};
}

}  // namespace vod::service
