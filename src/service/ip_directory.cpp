#include "service/ip_directory.h"

#include <sstream>
#include <stdexcept>

#include "common/contract.h"

namespace vod::service {

Ipv4 Ipv4::parse(const std::string& text) {
  std::uint32_t value = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (pos <= text.size() && octets < 4) {
    const std::size_t dot = text.find('.', pos);
    const std::string part =
        text.substr(pos, dot == std::string::npos ? dot : dot - pos);
    require(
        !(part.empty() || part.size() > 3 || part.find_first_not_of("0123456789") != std::string::npos),
        [&] { return "Ipv4::parse: bad octet in '" + text + "'"; });
    const int octet = std::stoi(part);
    require(!(octet > 255),
        [&] { return "Ipv4::parse: octet > 255 in '" + text + "'"; });
    value = (value << 8) | static_cast<std::uint32_t>(octet);
    ++octets;
    if (dot == std::string::npos) {
      pos = text.size() + 1;
      break;
    }
    pos = dot + 1;
  }
  require(!(octets != 4 || pos != text.size() + 1),
      [&] { return "Ipv4::parse: expected a.b.c.d, got '" + text + "'"; });
  return Ipv4{value};
}

std::string Ipv4::to_string() const {
  std::ostringstream os;
  os << ((value >> 24) & 0xff) << '.' << ((value >> 16) & 0xff) << '.'
     << ((value >> 8) & 0xff) << '.' << (value & 0xff);
  return os.str();
}

void IpDirectory::add_subnet(const std::string& cidr, NodeId node) {
  require(node.valid(), "IpDirectory::add_subnet: invalid node");
  const std::size_t slash = cidr.find('/');
  require(slash != std::string::npos,
      "IpDirectory::add_subnet: missing /prefix");
  const Ipv4 base = Ipv4::parse(cidr.substr(0, slash));
  const std::string prefix_text = cidr.substr(slash + 1);
  require(
      !(prefix_text.empty() || prefix_text.find_first_not_of("0123456789") != std::string::npos),
      "IpDirectory::add_subnet: bad prefix");
  const int prefix = std::stoi(prefix_text);
  require(!(prefix < 0 || prefix > 32),
      "IpDirectory::add_subnet: prefix outside 0..32");
  const std::uint32_t mask =
      prefix == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix);
  entries_.push_back(Entry{base.value & mask, prefix, node});
}

std::optional<NodeId> IpDirectory::home_of(Ipv4 ip) const {
  std::optional<NodeId> best;
  int best_length = -1;
  for (const Entry& entry : entries_) {
    const std::uint32_t mask =
        entry.prefix_length == 0
            ? 0
            : ~std::uint32_t{0} << (32 - entry.prefix_length);
    if ((ip.value & mask) == entry.network &&
        entry.prefix_length > best_length) {
      best = entry.node;
      best_length = entry.prefix_length;
    }
  }
  return best;
}

std::optional<NodeId> IpDirectory::home_of(const std::string& ip) const {
  return home_of(Ipv4::parse(ip));
}

}  // namespace vod::service
