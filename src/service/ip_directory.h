// Client IP -> home server resolution.
//
// Figure 5 step 1: "Get the IP address of the client placing the video
// request; determine the server to whom the requesting user is directly
// connected (referred to as home server) by this IP."  Each participating
// site registers its subnets; lookup is longest-prefix match.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"

namespace vod::service {

/// A parsed IPv4 address.
struct Ipv4 {
  std::uint32_t value = 0;

  /// Parses dotted-quad notation; throws std::invalid_argument on bad input.
  static Ipv4 parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(Ipv4, Ipv4) = default;
};

/// Longest-prefix-match table from subnets to home servers.
class IpDirectory {
 public:
  /// Registers `cidr` (e.g. "150.140.0.0/16") as homed at `node`.
  /// Overlapping subnets are allowed; the longest prefix wins at lookup.
  void add_subnet(const std::string& cidr, NodeId node);

  /// Home server of `ip`; nullopt when no subnet matches.
  [[nodiscard]] std::optional<NodeId> home_of(const std::string& ip) const;
  [[nodiscard]] std::optional<NodeId> home_of(Ipv4 ip) const;

  [[nodiscard]] std::size_t subnet_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t network;
    int prefix_length;
    NodeId node;
  };
  std::vector<Entry> entries_;
};

}  // namespace vod::service
