// Decision auditing — the operator's trace of what the routing layer did.
//
// AuditingPolicy decorates any ServerSelectionPolicy and records every
// per-cluster selection (when, for whom, which server, how it was routed)
// into a bounded ring buffer the administration module can inspect —
// "why did that stream come from Xanthi at 4pm?" answered from data.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "common/ids.h"
#include "common/sim_time.h"
#include "sim/simulation.h"
#include "stream/policy.h"

namespace vod::service {

/// One recorded selection.
struct AuditEntry {
  SimTime at;
  NodeId home;
  VideoId video;
  std::size_t cluster_index = 0;
  bool satisfied = false;     // false: no server could provide the title
  NodeId server;              // valid when satisfied
  double path_cost = 0.0;     // 0 for local serving
  std::size_t hop_count = 0;  // 0 for local serving
};

/// Bounded ring of AuditEntry, newest last.
class DecisionAudit {
 public:
  explicit DecisionAudit(std::size_t capacity = 256);

  void record(AuditEntry entry);

  [[nodiscard]] const std::deque<AuditEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total recorded ever (>= entries().size()).
  [[nodiscard]] std::size_t recorded() const { return recorded_; }

  /// Renders the newest `count` entries as an aligned table (node names
  /// resolved through `node_name`).
  [[nodiscard]] std::string format_recent(
      std::size_t count,
      const std::function<std::string(NodeId)>& node_name) const;

 private:
  std::size_t capacity_;
  std::size_t recorded_ = 0;
  std::deque<AuditEntry> entries_;
};

/// Decorates a policy: forwards every call and records the outcome.
class AuditingPolicy final : public stream::ServerSelectionPolicy {
 public:
  /// References must outlive the decorator.
  AuditingPolicy(stream::ServerSelectionPolicy& inner, DecisionAudit& audit,
                 const sim::Simulation& sim)
      : inner_(inner), audit_(audit), sim_(sim) {}

  [[nodiscard]] std::optional<stream::Selection> select(
      NodeId home, VideoId video) override {
    return select_cluster(home, video, 0);
  }

  [[nodiscard]] std::optional<stream::Selection> select_cluster(
      NodeId home, VideoId video, std::size_t cluster_index) override;

  [[nodiscard]] const char* name() const override { return inner_.name(); }

 private:
  stream::ServerSelectionPolicy& inner_;
  DecisionAudit& audit_;
  const sim::Simulation& sim_;
};

}  // namespace vod::service
