// The complete VoD service — the paper's Figure 1 wired together.
//
// Owns the database, one DMA cache per video server, the SNMP statistics
// module, the VRA and the streaming machinery, and exposes the two
// interfaces of the paper: the user-facing web module (browse/search/
// request) and the limited-access administration module.
//
// Substitution note (see DESIGN.md): when the DMA admits a title at a
// server, the copy becomes available immediately — the home server acts as
// a store-and-forward proxy filling its cache from the stream passing
// through it.  The admission threshold option controls how eagerly that
// happens.
#pragma once

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/slot_map.h"
#include "common/units.h"
#include "common/user_class.h"
#include "db/database.h"
#include "dma/dma_cache.h"
#include "net/fluid.h"
#include "net/topology.h"
#include "net/transfer.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "service/audit.h"
#include "service/ip_directory.h"
#include "sim/simulation.h"
#include "snmp/snmp_module.h"
#include "storage/disk_array.h"
#include "stream/policy.h"
#include "stream/session.h"
#include "vra/vra.h"

namespace vod::service {

/// Hardware of one video server (all servers homogeneous by default; use
/// ServiceOptions::server_overrides per node if needed).
struct ServerSetup {
  std::size_t disk_count = 8;
  storage::DiskProfile disk_profile{};
  /// kPlain = the paper's Figure 3; kParity = the RAID-5-style
  /// reliability extension (survives one disk failure per server).
  storage::StripingMode striping = storage::StripingMode::kPlain;
};

/// Failure-handling behaviour of the service (see src/fault for the
/// injector that exercises it).
struct FailoverOptions {
  /// Push fault notifications into affected sessions immediately (the
  /// connection-reset signal): a session streaming from a crashed server
  /// or across a cut link re-consults the selection policy at once instead
  /// of waiting out its stall watchdog.  False = watchdog-only baseline.
  bool proactive = true;
  /// Service-level retries of a failed session (0 = off): the failed
  /// request is re-submitted as a fresh session after an exponential
  /// backoff, up to this many times.
  int retry_limit = 0;
  double retry_backoff_seconds = 30.0;
  double retry_backoff_factor = 2.0;
  double retry_backoff_max_seconds = 480.0;
};

/// Per-class service policy (see QosOptions::policies, indexed by
/// class_index()).  The defaults are identity knobs: weight 1, headroom
/// x1, the global retry budget, unscaled patience.
struct ClassPolicy {
  /// Weight of this class's transfers in the fluid network's weighted
  /// max-min fill.  Borrowing is emergent: a premium flow frozen at its
  /// cap stops consuming fill increments, so its unused share spills to
  /// whoever is still filling — lower classes included — each allocation
  /// epoch.
  std::uint32_t flow_weight = 1;
  /// Multiplier on the base admission headroom for this class (lower
  /// classes demand more slack; see AdmissionOptions::class_headroom).
  double admission_headroom = 1.0;
  /// Service-level retry budget for this class; -1 inherits
  /// FailoverOptions::retry_limit.  0 means a failed (or preempted)
  /// session of this class is simply absorbed shed.
  int retry_limit = -1;
  /// Multiplier on the session stall timeout: <1 gives up sooner (sheds
  /// first under a storm), >1 is more patient.
  double stall_timeout_scale = 1.0;
};

/// Tiered-QoS configuration.  Disabled (the default) keeps the service
/// byte-identical to the classless paper behaviour: every class-aware
/// branch collapses to the identity and no per-class metric is created.
struct QosOptions {
  bool enabled = false;
  /// May a request that fails plain admission preempt enough lower-class
  /// sessions (ranked class-descending, then youngest-first) to fit?
  bool allow_preemption = true;
  /// Indexed by class_index(): premium, standard, background.
  std::array<ClassPolicy, kUserClassCount> policies{
      ClassPolicy{/*flow_weight=*/4, /*admission_headroom=*/1.0,
                  /*retry_limit=*/-1, /*stall_timeout_scale=*/1.5},
      ClassPolicy{/*flow_weight=*/2, /*admission_headroom=*/1.1,
                  /*retry_limit=*/-1, /*stall_timeout_scale=*/1.0},
      ClassPolicy{/*flow_weight=*/1, /*admission_headroom=*/1.25,
                  /*retry_limit=*/-1, /*stall_timeout_scale=*/0.5},
  };
};

/// What the service keeps of a session once it finishes or fails.  Full
/// Session objects are always retired (destroyed) on completion — memory
/// for live machinery is O(active sessions) either way; this chooses what
/// survives them.
enum class SessionRetention {
  /// Keep a compact SessionRecord (metrics summary + identity) per retired
  /// session: post-run reports, per-session assertions and retry-chain
  /// reconstruction keep working.  Memory is O(total sessions), but a
  /// record is far smaller than a live Session.
  kSummaries,
  /// Keep only the aggregate counters/histograms.  Retired ids vanish from
  /// session_ids() and per-session accessors throw for them; memory is
  /// O(active) no matter how many sessions a run churns through — the
  /// million-session configuration.
  kCountersOnly,
};

/// Compact summary of one retired session (SessionRetention::kSummaries).
struct SessionRecord {
  stream::SessionMetrics metrics;
  NodeId home;
  db::VideoInfo video;
  UserClass user_class = UserClass::kStandard;
  /// Retry-chain bookkeeping (FailoverOptions::retry_limit): set when this
  /// session failed and was re-submitted, superseding its outcome.
  bool superseded = false;
  /// The retry session spawned for it (invalid until the backoff fires).
  SessionId retried_as{};
};

/// Global service configuration.
struct ServiceOptions {
  /// The striping/switching unit c (MB) — common to all disks, per paper.
  MegaBytes cluster_size{50.0};
  /// SNMP refresh period (paper: 1–2 minutes).
  double snmp_interval_seconds = 90.0;
  /// Switch-hysteresis margin of the per-cluster VRA policy (0 = the
  /// paper's always-follow-the-best behaviour; see stream::VraPolicy).
  double vra_switch_hysteresis = 0.0;
  /// Batching window (s): a request for a title already streaming to the
  /// same home server within this window joins that stream instead of
  /// opening a new one — the service-aggregation idea of the paper's
  /// refs [10]/[14].  0 disables coalescing (paper behaviour).
  double coalesce_window_seconds = 0.0;
  /// Ring-buffer size of the routing decision audit (0 = auditing off).
  std::size_t audit_capacity = 0;
  /// Incremental LVN engine: cache the weighted graph and shortest-path
  /// trees between database changes (selections are identical either way;
  /// false recomputes per request, the seed behaviour).
  bool vra_cache_enabled = true;
  vra::ValidationOptions validation{};
  dma::DmaOptions dma{};
  stream::SessionOptions session{};
  FailoverOptions failover{};
  /// VRA degraded mode: when every link's statistics are staler than this
  /// (SNMP monitor dark), server selection falls back to min-hop routing
  /// over links still believed up instead of trusting stale LVNs.
  /// Infinity disables the mode.
  double degraded_stats_age_seconds =
      std::numeric_limits<double>::infinity();
  /// Hardware defaults for every video server...
  ServerSetup server{};
  /// ...with optional per-node overrides (heterogeneous deployments).
  std::map<NodeId, ServerSetup> server_overrides{};
  /// What survives a session's retirement (see SessionRetention).
  SessionRetention retention = SessionRetention::kSummaries;
  /// Tiered user-class QoS (request_classed); off = classless paper mode.
  QosOptions qos{};
};

/// The running service.
class VodService {
 public:
  /// `topology` and `network` must outlive the service.
  VodService(sim::Simulation& sim, const net::Topology& topology,
             net::FluidNetwork& network, ServiceOptions options,
             db::AdminCredential admin);

  // ---- service initialization (paper section) ----

  /// Registers a title; available nowhere until placed or DMA-admitted.
  VideoId add_video(std::string title, MegaBytes size, Mbps bitrate);

  /// Stores a full copy at `server` (initial seeding by the
  /// administrators); throws if the disks cannot tolerate it.
  void place_initial_copy(NodeId server, VideoId video);

  /// Takes a first SNMP sample and starts periodic polling.
  void start();

  [[nodiscard]] IpDirectory& ip_directory() { return ips_; }

  // ---- the web module (full access) ----

  [[nodiscard]] std::vector<db::VideoInfo> list_titles() const;
  [[nodiscard]] std::vector<db::VideoInfo> search_titles(
      const std::string& needle) const;
  [[nodiscard]] std::optional<db::VideoInfo> find_title(
      const std::string& title) const;

  /// The `count` most requested titles network-wide (DMA points summed
  /// over every server), most popular first; ties toward lower video ids.
  /// The web module's "most popular" shelf.
  [[nodiscard]] std::vector<std::pair<db::VideoInfo, std::uint64_t>>
  top_titles(std::size_t count) const;

  /// Full user request path: resolve the client's home server from its IP,
  /// run the DMA accounting at that server, then stream under VRA control.
  /// Throws std::invalid_argument if the IP maps to no registered subnet.
  SessionId request_by_ip(const std::string& client_ip, VideoId video,
                          stream::Session::DoneCallback on_done = {});

  /// Same, with the home server already known.
  SessionId request_at(NodeId home, VideoId video,
                       stream::Session::DoneCallback on_done = {});

  /// Outcome of an admission-controlled request.  kPreempted means
  /// admitted *by* preemption: the session started, and `preempted` lists
  /// who paid for it.
  enum class Admission { kAdmitted, kRejected, kNoServer, kPreempted };
  struct AdmissionOutcome {
    Admission verdict;
    /// Set only when admitted (kAdmitted or kPreempted).
    std::optional<SessionId> session;
    /// Sessions aborted to make room (kPreempted only), in the order they
    /// were sacrificed: lowest class first, youngest first within a class.
    std::vector<SessionId> preempted;
  };

  /// Like request_at, but the session starts only if the VRA's chosen path
  /// has at least `headroom` x the title's bitrate of residual bandwidth
  /// (per the limited-access statistics).  Rejected requests still count
  /// toward the home server's DMA popularity — a denied user asked for the
  /// title all the same.
  AdmissionOutcome request_with_admission(
      NodeId home, VideoId video, double headroom = 1.0,
      stream::Session::DoneCallback on_done = {});

  /// Fixed failure reason of sessions aborted by the preemption planner —
  /// reports and tests identify victims by it.
  static constexpr const char* kPreemptedReason =
      "preempted by higher-class admission";

  /// The tiered front door (ServiceOptions::qos): class-aware admission
  /// (per-class headroom via `headroom` x the class's multiplier), then —
  /// when plain admission fails, preemption is allowed, and the path is
  /// merely saturated rather than severed — the planner ranks strictly
  /// lower-class victims (class-descending, youngest-first, deterministic)
  /// and aborts just enough of them, by their current delivered rates, to
  /// cover every short link's deficit.  Victims re-enter through the
  /// service-retry chain at their own class (their remaining budget
  /// permitting).  With qos.enabled == false this is exactly
  /// request_with_admission for any class argument.
  AdmissionOutcome request_classed(NodeId home, VideoId video, UserClass cls,
                                   double headroom = 1.0,
                                   stream::Session::DoneCallback on_done = {});

  /// Class of an active or retired session (kStandard for pre-QoS runs).
  [[nodiscard]] UserClass session_class(SessionId id) const;

  /// Sessions aborted by the preemption planner so far.
  [[nodiscard]] std::size_t preemption_victim_count() const {
    return preemption_victims_;
  }
  /// Requests admitted only by preempting someone (kPreempted outcomes).
  [[nodiscard]] std::size_t preempted_admit_count() const {
    return preempted_admits_;
  }

  [[nodiscard]] std::size_t admitted_count() const {
    return static_cast<std::size_t>(admitted_.value());
  }
  [[nodiscard]] std::size_t rejected_count() const {
    return static_cast<std::size_t>(rejected_.value());
  }
  /// Requests satisfied by joining an existing stream (coalescing).
  [[nodiscard]] std::size_t coalesced_count() const {
    return static_cast<std::size_t>(coalesced_.value());
  }

  // ---- the administration module (limited access) ----

  /// Privileged database view (stats + config).
  [[nodiscard]] db::LimitedAccessView admin_view();
  void set_server_online(NodeId server, bool online);

  /// Fails one disk at `server`: titles striped onto it disappear from
  /// that server's catalog entry (the VRA immediately stops offering
  /// them from there).  Returns the lost titles.
  std::vector<VideoId> fail_disk(NodeId server, std::size_t slot);

  /// The routing decision audit; throws std::logic_error when
  /// ServiceOptions::audit_capacity was 0.
  [[nodiscard]] const DecisionAudit& audit() const;
  [[nodiscard]] snmp::SnmpModule& snmp() { return *snmp_; }

  // ---- fault notifications (the failover machinery's entry points) ----

  /// Link failure: the fluid network drops the link; with proactive
  /// failover the database learns immediately (connection reset beats the
  /// next SNMP poll) and every session streaming across the link re-selects
  /// its source at once.  Idempotent.
  void fail_link(LinkId link);
  void restore_link(LinkId link);

  /// Server crash: the server goes offline in the database (the VRA's
  /// per-request poll of candidate servers sees the crash either way);
  /// sessions streaming from it either fail over immediately (proactive)
  /// or are black-holed until their stall watchdog fires (baseline).
  /// A restart brings the server back with its disk contents intact.
  /// Idempotent.
  void crash_server(NodeId server);
  void restore_server(NodeId server);
  [[nodiscard]] bool server_crashed(NodeId server) const {
    return std::binary_search(crashed_servers_.begin(),
                              crashed_servers_.end(), server);
  }

  /// Service-level retries performed so far (FailoverOptions::retry_limit).
  [[nodiscard]] std::size_t service_retry_count() const {
    return static_cast<std::size_t>(service_retries_.value());
  }
  /// True when `id` failed and was re-submitted as a new session — its
  /// outcome was superseded by the retry's.  Chain bookkeeping lives on
  /// the retired records (pruned with them under kCountersOnly).
  [[nodiscard]] bool session_superseded(SessionId id) const {
    const SessionRecord* record = record_of(id);
    return record != nullptr && record->superseded;
  }
  /// The retry session spawned for a superseded `id`, if any yet.
  [[nodiscard]] std::optional<SessionId> retried_as(SessionId id) const;

  // ---- observability ----

  /// The service's metrics registry — one source of truth for run-level
  /// counters.  The service's own counters live here directly; the VRA /
  /// SNMP / DMA / fluid counters are mirrored in at snapshot time by the
  /// collectors registered in the constructor.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// Point-in-time copy of every metric, collectors included.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot();
  }
  /// Sessions started and not yet finished or failed.
  [[nodiscard]] std::size_t active_session_count() const {
    return active_sessions_;
  }
  /// Live Session objects resident in the store.  Finished/failed sessions
  /// are retired (destroyed) by a same-instant sweep, so between events
  /// this equals active_session_count() — the O(active) memory invariant
  /// the leak regression test pins down.
  [[nodiscard]] std::size_t resident_session_count() const {
    return sessions_.size();
  }
  /// Coalescing batches currently open (stale ones are swept one window
  /// after registration and when their leader retires).
  [[nodiscard]] std::size_t open_batch_count() const {
    return batches_.size();
  }

  // ---- accessors ----

  [[nodiscard]] const vra::Vra& vra() const { return *vra_; }
  /// The live Session object — *active sessions only*: once a session
  /// finishes or fails it is retired to a SessionRecord and this throws
  /// std::out_of_range.  Post-completion consumers use session_metrics()
  /// and friends, which serve active and retired sessions alike.
  [[nodiscard]] stream::Session& session(SessionId id);
  [[nodiscard]] const stream::Session& session(SessionId id) const;
  /// Metrics of an active or retired session; throws std::out_of_range for
  /// unknown ids (including retired ids under kCountersOnly retention).
  [[nodiscard]] const stream::SessionMetrics& session_metrics(
      SessionId id) const;
  /// Home server of an active or retired session.
  [[nodiscard]] NodeId session_home(SessionId id) const;
  /// Catalog entry of the title an active or retired session streamed.
  [[nodiscard]] const db::VideoInfo& session_video(SessionId id) const;
  /// Every session known: active plus retired (ascending id).  Under
  /// kCountersOnly retention, active only.
  [[nodiscard]] std::vector<SessionId> session_ids() const;
  [[nodiscard]] dma::DmaCache& dma_cache(NodeId server);
  [[nodiscard]] db::Database& database() { return db_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] net::TransferManager& transfers() { return transfers_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  struct ServerState {
    std::unique_ptr<storage::DiskArray> disks;
    std::unique_ptr<dma::DmaCache> cache;
  };

  void register_topology();

  /// Creates, registers and starts a session; wraps `on_done` with the
  /// service-retry machinery when `retries_left > 0`.  `register_batch`
  /// is false for retry sessions (they joined no coalescing batch and
  /// already paid their DMA accounting).  `cls` selects the per-class
  /// session knobs (weight, patience) and rides the retry chain, so a
  /// preempted or failed session re-enters at its own class.
  SessionId spawn_session(NodeId home, const db::VideoInfo& info,
                          UserClass cls,
                          stream::Session::DoneCallback on_done,
                          int retries_left, Duration backoff,
                          bool register_batch);
  stream::Session::DoneCallback wrap_with_retry(
      SessionId id, NodeId home, const db::VideoInfo& info, UserClass cls,
      stream::Session::DoneCallback on_done, int retries_left,
      Duration backoff);

  /// The shared tail of request_at / request_classed: DMA accounting,
  /// class-gated coalescing (a request only joins a leader of its own
  /// class), spawn with the class's retry budget.
  SessionId request_at_impl(NodeId home, const db::VideoInfo& info,
                            UserClass cls,
                            stream::Session::DoneCallback on_done);

  /// This class's service-retry budget (ClassPolicy::retry_limit, -1 =
  /// the global FailoverOptions::retry_limit).
  [[nodiscard]] int retry_limit_for(UserClass cls) const;
  /// The per-session knobs for `cls`: ServiceOptions::session with the
  /// class's flow weight, patience scale and label applied (identity when
  /// qos is disabled).
  [[nodiscard]] stream::SessionOptions session_options_for(
      UserClass cls) const;
  /// Lazy per-class instruments (`qos.<class>.<what>`): created on first
  /// touch, so classless runs never grow the registry.
  obs::Counter& qos_counter(UserClass cls, const char* what);
  obs::Histogram& qos_histogram(UserClass cls, const char* what,
                                std::vector<double> upper_bounds);

  /// The preemption plan for a failed admission: which strictly-lower-
  /// class sessions to abort so that every link of `path` short of
  /// `required` residual recovers the difference (by the victims' current
  /// delivered rates).  Victims are ranked class-descending then
  /// youngest-first (id descending).  nullopt when the candidates cannot
  /// cover the deficit — then nobody is sacrificed in vain.
  [[nodiscard]] std::optional<std::vector<SessionId>> plan_preemption(
      const std::vector<LinkId>& path, Mbps required, UserClass cls);

  /// Stamps and (if proactive) fails over every active session whose
  /// in-flight transfer `predicate` says is hit by the fault.
  template <typename Predicate>
  void notify_sessions(const Predicate& predicate, const char* cause,
                       bool black_hole_when_passive);

  /// Called from the done observer (before user callbacks): snapshots the
  /// session into a SessionRecord (kSummaries) and queues the Session
  /// object for destruction by a same-instant sweep — a session cannot be
  /// destroyed while its own completion callback stack is still running.
  void retire_session(SessionId id, const stream::Session& session);
  void sweep_retired();
  /// Record of a retired session, nullptr when unknown or not retained.
  [[nodiscard]] SessionRecord* record_of(SessionId id);
  [[nodiscard]] const SessionRecord* record_of(SessionId id) const;
  /// Re-arming expiry sweep for coalescing batches: entries older than the
  /// window are dropped even if no later request ever looks them up.
  void schedule_batch_expiry();

  sim::Simulation& sim_;
  const net::Topology& topology_;
  net::FluidNetwork& network_;
  ServiceOptions options_;
  db::AdminCredential admin_;
  db::Database db_;
  net::TransferManager transfers_;
  IpDirectory ips_;
  std::map<NodeId, ServerState> servers_;
  std::unique_ptr<snmp::SnmpModule> snmp_;
  std::unique_ptr<vra::Vra> vra_;
  std::unique_ptr<stream::VraPolicy> vra_policy_;
  std::unique_ptr<DecisionAudit> audit_;
  std::unique_ptr<AuditingPolicy> audited_policy_;
  /// The policy sessions actually use (the VRA policy, possibly audited).
  stream::ServerSelectionPolicy* policy_ = nullptr;
  /// Pool before store: the store's Ptr deleters return into the pool, so
  /// it must outlive them (members destroy in reverse declaration order).
  ObjectPool<stream::Session> session_pool_;
  /// Dense store of *live* sessions only — finished/failed ones retire to
  /// `retired_` records and leave this map, keeping it O(active).
  SlotMap<SessionId, ObjectPool<stream::Session>::Ptr> sessions_;
  /// Summaries of retired sessions, indexed by id value (kSummaries only;
  /// never shrinks — it IS the retained history).
  std::vector<std::optional<SessionRecord>> retired_;
  /// Sessions completed this instant, awaiting the retirement sweep.
  std::vector<SessionId> retire_queue_;
  bool retire_sweep_scheduled_ = false;
  bool batch_expiry_scheduled_ = false;
  /// Open batches: (home, video) -> (leader session, batch started at).
  /// Keyed by (node, video) — small and pruned (lookup, leader retirement,
  /// expiry sweep), so a node-based map is fine here.
  std::map<std::pair<NodeId, VideoId>, std::pair<SessionId, SimTime>>
      batches_;
  SessionId::underlying_type next_session_ = 0;
  /// Fork/serial totals at construction: the runtime's counters are
  /// process-global, so the collector reports lifetime deltas — two
  /// identical runs in one process snapshot identical numbers.
  ParallelStats parallel_baseline_ = parallel_stats();
  /// Registry first: the Counter/Histogram references below point into it.
  obs::MetricsRegistry metrics_;
  obs::Counter& admitted_ = metrics_.counter("service.admitted");
  obs::Counter& rejected_ = metrics_.counter("service.rejected");
  obs::Counter& coalesced_ = metrics_.counter("service.coalesced");
  obs::Counter& service_retries_ = metrics_.counter("service.retries");
  obs::Counter& sessions_finished_ =
      metrics_.counter("service.sessions_finished");
  obs::Counter& sessions_failed_ =
      metrics_.counter("service.sessions_failed");
  obs::Histogram& startup_delay_hist_ = metrics_.histogram(
      "session.startup_delay_seconds", {1, 2, 5, 10, 30, 60, 120, 300});
  obs::Histogram& download_hist_ = metrics_.histogram(
      "session.download_seconds", {60, 300, 600, 1800, 3600, 7200, 14400});
  /// Rebuffer totals for every retired session regardless of QoS mode (the
  /// lazy qos.<class>.stall_seconds split exists only on classed runs);
  /// the SLO monitor's stall-ceiling specs read this one.
  obs::Histogram& stall_hist_ = metrics_.histogram(
      "session.stall_seconds", {1, 5, 15, 30, 60, 120, 300, 600, 1800});
  std::size_t active_sessions_ = 0;
  /// Crashed-server set on the failover hot path: sorted vector, binary
  /// searched — a handful of NodeIds never justifies a node-based tree.
  std::vector<NodeId> crashed_servers_;
  /// Preemption totals (plain members, not registry counters: the
  /// registry's per-class series are created lazily so classless
  /// snapshots stay untouched, but these must be readable either way).
  std::size_t preemption_victims_ = 0;
  std::size_t preempted_admits_ = 0;
};

}  // namespace vod::service
