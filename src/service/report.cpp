#include "service/report.h"

#include <sstream>

#include "common/csv.h"
#include "common/table.h"

namespace vod::service {

namespace {

/// Every report percentile renders through here: SampleSet::quantile
/// delegates to vod::nearest_rank (common/stats.h), the same rank rule
/// obs::bucket_quantile uses for histogram/SLO percentiles — one
/// implementation, one precision.
std::string quantile_cell(const SampleSet& samples, double q) {
  return TextTable::num(samples.quantile(q), 2);
}

}  // namespace

ServiceReport build_report(const VodService& service, Mbps qos_floor) {
  ServiceReport report;
  report.qos_floor = qos_floor;
  // The cache counters come through the metrics registry (the collectors
  // mirror the VRA's stats into the snapshot), so the report and any other
  // metrics consumer read one source of truth.
  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  report.vra_cache.graph_hits = snap.value_u64("vra.graph_hits");
  report.vra_cache.graph_incremental = snap.value_u64("vra.graph_incremental");
  report.vra_cache.graph_rebuilds = snap.value_u64("vra.graph_rebuilds");
  report.vra_cache.edges_rewritten = snap.value_u64("vra.edges_rewritten");
  report.vra_cache.spt_hits = snap.value_u64("vra.spt_hits");
  report.vra_cache.spt_misses = snap.value_u64("vra.spt_misses");
  report.vra_cache_enabled = service.vra().cache_enabled();
  for (const SessionId id : service.session_ids()) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    ++report.sessions;
    report.total_switches += m.server_switches;
    report.total_stall_retries += m.stall_retries;
    report.total_rebuffer_seconds += m.rebuffer_seconds;
    if (m.failed) {
      ++report.failed;
      continue;
    }
    if (!m.finished) {
      ++report.in_flight;
      continue;
    }
    ++report.finished;
    report.startup_seconds.add(m.startup_delay());
    report.download_seconds.add(*m.download_completed_at - m.requested_at);
    const Mbps floor = qos_floor.value() > 0.0
                           ? qos_floor
                           : service.session_video(id).bitrate;
    if (m.meets_qos_floor(floor)) ++report.qos_ok;
  }
  return report;
}

std::string format_report(const ServiceReport& report) {
  TextTable table{{"metric", "value"}};
  table.add_row({"sessions", std::to_string(report.sessions)});
  table.add_row({"finished", std::to_string(report.finished)});
  table.add_row({"failed", std::to_string(report.failed)});
  table.add_row({"in flight", std::to_string(report.in_flight)});
  if (report.finished > 0) {
    table.add_row({"startup median (s)",
                   TextTable::num(report.startup_seconds.median(), 1)});
    table.add_row({"startup p95 (s)",
                   TextTable::num(report.startup_seconds.quantile(0.95), 1)});
    table.add_row({"download median (s)",
                   TextTable::num(report.download_seconds.median(), 1)});
    table.add_row(
        {"download p95 (s)",
         TextTable::num(report.download_seconds.quantile(0.95), 1)});
  }
  table.add_row({"total rebuffer (s)",
                 TextTable::num(report.total_rebuffer_seconds, 1)});
  table.add_row({"server switches", std::to_string(report.total_switches)});
  table.add_row({"stall retries",
                 std::to_string(report.total_stall_retries)});
  std::ostringstream floor_label;
  if (report.qos_floor.value() > 0.0) {
    floor_label << "QoS-ok (floor " << report.qos_floor << ")";
  } else {
    floor_label << "QoS-ok (floor = title bitrate)";
  }
  table.add_row({floor_label.str(),
                 std::to_string(report.qos_ok) + " (" +
                     TextTable::num(100.0 * report.qos_ok_share(), 0) +
                     "%)"});
  table.add_row({"VRA cache",
                 report.vra_cache_enabled ? "enabled" : "disabled"});
  table.add_row({"VRA graph hits",
                 std::to_string(report.vra_cache.graph_hits)});
  table.add_row({"VRA graph incremental",
                 std::to_string(report.vra_cache.graph_incremental)});
  table.add_row({"VRA graph rebuilds",
                 std::to_string(report.vra_cache.graph_rebuilds)});
  table.add_row({"VRA edges rewritten",
                 std::to_string(report.vra_cache.edges_rewritten)});
  table.add_row({"VRA SPT hits",
                 std::to_string(report.vra_cache.spt_hits)});
  table.add_row({"VRA SPT misses",
                 std::to_string(report.vra_cache.spt_misses)});
  return table.render();
}

ResilienceReport build_resilience_report(const VodService& service,
                                         Mbps qos_floor) {
  ResilienceReport report;
  report.qos_floor = qos_floor;
  report.service_retries = service.service_retry_count();
  report.degraded_selections = service.vra().degraded_selection_count();
  report.classed = service.options().qos.enabled;
  for (const SessionId id : service.session_ids()) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    ResilienceReport::ClassSla& sla =
        report.by_class[class_index(service.session_class(id))];
    ++report.sessions;
    report.proactive_failovers += m.proactive_failovers;
    report.stall_retries += m.stall_retries;
    for (const double latency : m.failover_latencies) {
      report.failover_latency_seconds.add(latency);
      sla.failover_latency_seconds.add(latency);
    }
    // Every sacrifice counts, retried-and-superseded attempts included.
    if (m.failed && m.failure_reason == VodService::kPreemptedReason) {
      ++sla.preempted;
    }
    if (service.session_superseded(id)) continue;  // outcome lives on
    ++report.requests;
    ++sla.requests;
    report.stall_seconds.add(m.rebuffer_seconds);
    sla.stall_seconds.add(m.rebuffer_seconds);
    const bool hit_by_fault =
        !m.failover_latencies.empty() || m.proactive_failovers > 0;
    if (hit_by_fault) ++report.sessions_with_failover;
    if (m.finished) {
      ++report.finished;
      ++sla.finished;
      if (hit_by_fault) ++report.survived_failover;
      const Mbps floor = qos_floor.value() > 0.0
                             ? qos_floor
                             : service.session_video(id).bitrate;
      if (m.meets_qos_floor(floor)) ++report.qos_ok;
    } else if (m.failed) {
      ++report.failed;
      ++sla.failed;
    } else {
      ++report.hung;
    }
  }
  // The front-door admission series exist only for classes that saw a
  // classed request (the instruments are created lazily).
  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  for (std::size_t c = 0; c < kUserClassCount; ++c) {
    const std::string prefix =
        std::string("qos.") + to_string(static_cast<UserClass>(c)) + ".";
    ResilienceReport::ClassSla& sla = report.by_class[c];
    const auto read = [&](const char* what) -> std::uint64_t {
      const std::string name = prefix + what;
      return snap.has(name) ? snap.value_u64(name) : 0;
    };
    sla.admission_requests = read("requests");
    sla.admitted = read("admitted");
    sla.rejected = read("rejected");
    sla.no_server = read("no_server");
  }
  return report;
}

std::string format_resilience_report(const ResilienceReport& report) {
  TextTable table{{"metric", "value"}};
  table.add_row({"sessions (incl. retries)", std::to_string(report.sessions)});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"finished", std::to_string(report.finished)});
  table.add_row({"failed", std::to_string(report.failed)});
  table.add_row({"hung", std::to_string(report.hung)});
  table.add_row({"availability",
                 TextTable::num(100.0 * report.availability(), 1) + "%"});
  table.add_row({"QoS-ok", std::to_string(report.qos_ok)});
  table.add_row({"requests hit by faults",
                 std::to_string(report.sessions_with_failover)});
  table.add_row({"...of which finished",
                 std::to_string(report.survived_failover)});
  if (report.failover_latency_seconds.count() > 0) {
    table.add_row({"failover latency p50 (s)",
                   quantile_cell(report.failover_latency_seconds, 0.5)});
    table.add_row({"failover latency p95 (s)",
                   quantile_cell(report.failover_latency_seconds, 0.95)});
  }
  if (report.stall_seconds.count() > 0) {
    table.add_row(
        {"stall time p50 (s)", quantile_cell(report.stall_seconds, 0.5)});
    table.add_row(
        {"stall time p99 (s)", quantile_cell(report.stall_seconds, 0.99)});
  }
  table.add_row({"proactive failovers",
                 std::to_string(report.proactive_failovers)});
  table.add_row({"stall retries", std::to_string(report.stall_retries)});
  table.add_row({"service retries", std::to_string(report.service_retries)});
  table.add_row({"degraded selections",
                 std::to_string(report.degraded_selections)});
  if (report.classed) {
    for (std::size_t c = 0; c < kUserClassCount; ++c) {
      const ResilienceReport::ClassSla& sla = report.by_class[c];
      if (sla.requests == 0 && sla.admission_requests == 0) continue;
      const std::string cls = to_string(static_cast<UserClass>(c));
      table.add_row({cls + " admit rate",
                     std::to_string(sla.admitted) + "/" +
                         std::to_string(sla.admission_requests) + " (" +
                         TextTable::num(100.0 * sla.admit_rate(), 1) + "%)"});
      table.add_row({cls + " availability",
                     TextTable::num(100.0 * sla.availability(), 1) + "%"});
      table.add_row({cls + " preempted", std::to_string(sla.preempted)});
      if (sla.stall_seconds.count() > 0) {
        table.add_row({cls + " stall p50/p99 (s)",
                       quantile_cell(sla.stall_seconds, 0.5) + " / " +
                           quantile_cell(sla.stall_seconds, 0.99)});
      }
      if (sla.failover_latency_seconds.count() > 0) {
        table.add_row({cls + " failover p95 (s)",
                       quantile_cell(sla.failover_latency_seconds, 0.95)});
      }
    }
  }
  return table.render();
}

std::string report_sessions_csv(const VodService& service) {
  CsvWriter csv{{"session", "home", "title", "outcome", "startup_s",
                 "download_s", "rebuffer_s", "switches", "stall_retries",
                 "mean_rate_mbps"}};
  for (const SessionId id : service.session_ids()) {
    const stream::SessionMetrics& m = service.session_metrics(id);
    const char* outcome =
        m.failed ? "failed" : (m.finished ? "finished" : "in-flight");
    csv.add_row({
        std::to_string(id.value()),
        service.topology().node_name(service.session_home(id)),
        service.session_video(id).title,
        outcome,
        TextTable::num(m.startup_delay(), 3),
        m.download_completed_at
            ? TextTable::num(*m.download_completed_at - m.requested_at, 3)
            : "",
        TextTable::num(m.rebuffer_seconds, 3),
        std::to_string(m.server_switches),
        std::to_string(m.stall_retries),
        TextTable::num(m.mean_delivered_rate.value(), 3),
    });
  }
  return csv.str();
}

}  // namespace vod::service
