#include "service/distributed_striping.h"

#include <stdexcept>

#include "common/contract.h"
#include "routing/dijkstra.h"

namespace vod::service {

DistributedStripePlacer::DistributedStripePlacer(std::vector<NodeId> servers,
                                                 std::size_t replica_count)
    : servers_(std::move(servers)), replica_count_(replica_count) {
  require(!servers_.empty(), "DistributedStripePlacer: no servers");
  require(!(replica_count_ == 0 || replica_count_ > servers_.size()),
      "DistributedStripePlacer: replica_count outside [1, servers]");
}

std::vector<StripeAssignment> DistributedStripePlacer::plan(
    const std::vector<VideoId>& videos) const {
  std::vector<StripeAssignment> out;
  out.reserve(videos.size());
  for (std::size_t rank = 0; rank < videos.size(); ++rank) {
    StripeAssignment assignment;
    assignment.video = videos[rank];
    assignment.servers.reserve(replica_count_);
    // Rotate the server ring by popularity rank so each popular title's
    // strip-0 lands on a different server.
    for (std::size_t r = 0; r < replica_count_; ++r) {
      assignment.servers.push_back(
          servers_[(rank + r) % servers_.size()]);
    }
    out.push_back(std::move(assignment));
  }
  return out;
}

StripedSelectionPolicy::StripedSelectionPolicy(
    const vra::Vra& vra, std::vector<StripeAssignment> assignments)
    : vra_(vra) {
  for (StripeAssignment& assignment : assignments) {
    require(!assignment.servers.empty(),
        "StripedSelectionPolicy: empty server list");
    assignments_.emplace(assignment.video, std::move(assignment));
  }
}

std::optional<stream::Selection> StripedSelectionPolicy::select(
    NodeId home, VideoId video) {
  return select_cluster(home, video, 0);
}

std::optional<stream::Selection> StripedSelectionPolicy::select_cluster(
    NodeId home, VideoId video, std::size_t cluster_index) {
  const auto it = assignments_.find(video);
  if (it == assignments_.end()) {
    // Not strip-placed: the regular VRA handles it.
    const auto decision = vra_.select_server(home, video);
    if (!decision) return std::nullopt;
    return stream::Selection{decision->server, decision->path};
  }
  const StripeAssignment& assignment = it->second;
  const NodeId holder =
      assignment.servers[cluster_index % assignment.servers.size()];
  if (holder == home) {
    return stream::Selection{home, routing::Path{{home}, {}, 0.0}};
  }
  const routing::Graph graph = vra_.current_weighted_graph();
  auto path = routing::shortest_path(graph, home, holder);
  if (!path) return std::nullopt;
  return stream::Selection{holder, std::move(*path)};
}

}  // namespace vod::service
