#include "service/vod_service.h"

#include <algorithm>

#include <stdexcept>
#include <utility>

#include "common/contract.h"
#include "common/log.h"
#include "common/parallel.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace vod::service {

VodService::VodService(sim::Simulation& sim, const net::Topology& topology,
                       net::FluidNetwork& network, ServiceOptions options,
                       db::AdminCredential admin)
    : sim_(sim),
      topology_(topology),
      network_(network),
      options_(options),
      admin_(std::move(admin)),
      db_(admin_),
      transfers_(sim, network) {
  require(options_.server.disk_count != 0,
      "VodService: servers need at least one disk");
  register_topology();
  snmp_ = std::make_unique<snmp::SnmpModule>(
      sim_, network_, db_.limited_view(admin_),
      Duration{options_.snmp_interval_seconds});
  vra_ = std::make_unique<vra::Vra>(topology_, db_.full_view(),
                                    db_.limited_view(admin_),
                                    options_.validation,
                                    options_.vra_cache_enabled);
  vra_->configure_degraded_mode(Duration{options_.degraded_stats_age_seconds},
                                [this] { return sim_.now(); });
  vra_policy_ = std::make_unique<stream::VraPolicy>(
      *vra_, options_.vra_switch_hysteresis);
  policy_ = vra_policy_.get();
  if (options_.audit_capacity > 0) {
    audit_ = std::make_unique<DecisionAudit>(options_.audit_capacity);
    audited_policy_ = std::make_unique<AuditingPolicy>(*vra_policy_,
                                                       *audit_, sim_);
    policy_ = audited_policy_.get();
  }
  // Components that keep their own counters are mirrored into the registry
  // at snapshot time, so one snapshot covers the whole service.
  metrics_.add_collector([this](obs::MetricsSnapshot& snap) {
    const vra::VraCacheStats& cs = vra_->cache_stats();
    snap.set_counter("vra.graph_hits", cs.graph_hits);
    snap.set_counter("vra.graph_incremental", cs.graph_incremental);
    snap.set_counter("vra.graph_rebuilds", cs.graph_rebuilds);
    snap.set_counter("vra.edges_rewritten", cs.edges_rewritten);
    snap.set_counter("vra.spt_hits", cs.spt_hits);
    snap.set_counter("vra.spt_misses", cs.spt_misses);
    snap.set_counter("vra.degraded_selections",
                     vra_->degraded_selection_count());
    snap.set_counter("snmp.polls", snmp_->poll_count());
    snap.set_counter("fluid.reallocations", network_.reallocation_count());
    snap.set_counter("fluid.traffic_queries",
                     network_.traffic_query_count());
    snap.set_gauge("fluid.active_flows",
                   static_cast<double>(network_.active_flow_count()));
    snap.set_gauge("service.active_sessions",
                   static_cast<double>(active_sessions_));
    std::uint64_t hits = 0, stores = 0, evictions = 0, requests = 0;
    for (const auto& [node, state] : servers_) {
      hits += state.cache->hit_count();
      stores += state.cache->store_count();
      evictions += state.cache->eviction_count();
      requests += state.cache->request_count();
    }
    snap.set_counter("dma.hits", hits);
    snap.set_counter("dma.stores", stores);
    snap.set_counter("dma.evictions", evictions);
    snap.set_counter("dma.requests", requests);
    // Fork/serial decisions of the parallel runtime, so speedup tables can
    // confirm the grain threshold is actually forking (observe-only; the
    // counters never feed back into simulation state).
    const ParallelStats ps = parallel_stats();
    snap.set_counter("parallel.forks", ps.forks - parallel_baseline_.forks);
    snap.set_counter("parallel.serial_fallback",
                     ps.serial_fallback - parallel_baseline_.serial_fallback);
    snap.set_gauge("parallel.workers",
                   static_cast<double>(parallel_config().workers));
    // Epoch-barrier core shape (zeros under per-event stepping), so the
    // series sampler can plot sharded-vs-serial mix and shard skew.
    const sim::EpochExecutor& ex = sim_.epoch_executor();
    snap.set_counter("epoch.epochs", ex.epochs_run());
    snap.set_counter("epoch.sharded_events", ex.sharded_events_run());
    snap.set_counter("epoch.serial_events", ex.serial_events_run());
    const auto mirror_hist = [&snap](const char* name,
                                     const obs::Histogram& hist) {
      // In-place overload: the series sampler snapshots every tick, so a
      // warm entry's bucket vectors are reused instead of reallocated.
      snap.set_histogram(name, hist.upper_bounds(), hist.bucket_counts(),
                         hist.count(), hist.sum());
    };
    mirror_hist("epoch.shard_occupancy", ex.shard_occupancy());
    mirror_hist("epoch.shard_imbalance", ex.shard_imbalance());
    // Truncated traces are detectable from the snapshot alone; 0 (also
    // when no sink is installed) keeps the column present in every CSV.
    obs::TraceRecorder* tr = obs::trace_sink();
    snap.set_counter("trace.dropped_events",
                     tr != nullptr ? tr->dropped_count() : 0);
  });
}

const DecisionAudit& VodService::audit() const {
  ensure(audit_, "VodService::audit: auditing disabled (audit_capacity == 0)");
  return *audit_;
}

void VodService::register_topology() {
  auto view_factory = [this]() { return db_.limited_view(admin_); };
  for (std::size_t n = 0; n < topology_.node_count(); ++n) {
    const NodeId node{static_cast<NodeId::underlying_type>(n)};
    const auto override_it = options_.server_overrides.find(node);
    const ServerSetup& setup = override_it != options_.server_overrides.end()
                                   ? override_it->second
                                   : options_.server;
    require(setup.disk_count != 0,
        "VodService: server override needs at least one disk");
    db::ServerConfig config;
    config.disk_count = static_cast<int>(setup.disk_count);
    config.disk_capacity = setup.disk_profile.capacity;
    // The server's access bandwidth: sum of its adjacent links.
    Mbps access{0.0};
    for (const LinkId link : topology_.links_adjacent_to(node)) {
      access += topology_.link(link).capacity;
    }
    config.access_bandwidth = access;
    db_.register_server(node, topology_.node_name(node), config);

    ServerState state;
    state.disks = std::make_unique<storage::DiskArray>(
        setup.disk_count, setup.disk_profile, options_.cluster_size,
        setup.striping);
    // DMA admissions/evictions mirror into the server's title list so the
    // VRA (which reads the database) sees them.
    dma::DmaCallbacks callbacks;
    callbacks.on_admit = [node, view_factory](VideoId video) {
      view_factory().add_title(node, video);
    };
    callbacks.on_evict = [node, view_factory](VideoId video) {
      view_factory().remove_title(node, video);
    };
    state.cache = std::make_unique<dma::DmaCache>(
        *state.disks, options_.dma, std::move(callbacks));
    state.cache->set_trace_node(node.value());
    servers_.emplace(node, std::move(state));
  }
  for (const net::LinkInfo& info : topology_.links()) {
    db_.register_link(info.id, info.name, info.capacity);
  }
}

VideoId VodService::add_video(std::string title, MegaBytes size,
                              Mbps bitrate) {
  return db_.register_video(std::move(title), size, bitrate);
}

void VodService::place_initial_copy(NodeId server, VideoId video) {
  const auto info = db_.full_view().video(video);
  require(info, "place_initial_copy: unknown video");
  ServerState& state = servers_.at(server);
  if (state.disks->holds(video)) return;  // already there
  require(!(!state.disks->store(video,
      info->size)), "place_initial_copy: disks cannot tolerate the video");
  db_.limited_view(admin_).add_title(server, video);
}

void VodService::start() {
  snmp_->poll_now(sim_.now());
  snmp_->start();
}

std::vector<db::VideoInfo> VodService::list_titles() const {
  return db_.full_view().list_videos();
}

std::vector<db::VideoInfo> VodService::search_titles(
    const std::string& needle) const {
  return db_.full_view().search(needle);
}

std::optional<db::VideoInfo> VodService::find_title(
    const std::string& title) const {
  return db_.full_view().find_by_title(title);
}

std::vector<std::pair<db::VideoInfo, std::uint64_t>> VodService::top_titles(
    std::size_t count) const {
  const std::vector<db::VideoInfo> infos = db_.full_view().list_videos();
  std::vector<VideoId> ids;
  ids.reserve(infos.size());
  for (const db::VideoInfo& info : infos) ids.push_back(info.id);
  // Per-server DMA points come back as one positional bulk sweep per
  // server (the parallel region lives in DmaCache::points_bulk); the sums
  // are integers, so accumulation order cannot change the ranking.
  std::vector<std::uint64_t> demand(infos.size(), 0);
  std::vector<std::uint64_t> server_points;
  for (const auto& [node, state] : servers_) {
    state.cache->points_bulk(ids, server_points);
    for (std::size_t i = 0; i < demand.size(); ++i) {
      demand[i] += server_points[i];
    }
  }
  std::vector<std::pair<db::VideoInfo, std::uint64_t>> ranked;
  ranked.reserve(infos.size());
  for (std::size_t i = 0; i < infos.size(); ++i) {
    ranked.emplace_back(infos[i], demand[i]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first.id < b.first.id;
            });
  if (ranked.size() > count) ranked.resize(count);
  return ranked;
}

SessionId VodService::request_by_ip(const std::string& client_ip,
                                    VideoId video,
                                    stream::Session::DoneCallback on_done) {
  const auto home = ips_.home_of(client_ip);
  require(home,
      [&] { return "request_by_ip: no subnet matches " + client_ip; });
  return request_at(*home, video, std::move(on_done));
}

SessionId VodService::request_at(NodeId home, VideoId video,
                                 stream::Session::DoneCallback on_done) {
  const auto info = db_.full_view().video(video);
  require(info, "request_at: unknown video");
  require(topology_.has_node(home), "request_at: unknown home node");
  return request_at_impl(home, *info, UserClass::kStandard,
                         std::move(on_done));
}

SessionId VodService::request_at_impl(NodeId home, const db::VideoInfo& info,
                                      UserClass cls,
                                      stream::Session::DoneCallback on_done) {
  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    tr->instant(
        obs::Subsystem::kService, "service.request",
        {{"home", topology_.node_name(home)},
         {"video", obs::num(static_cast<std::uint64_t>(info.id.value()))}});
  }

  // DMA accounting at the home server: the request counts toward the
  // title's popularity there and may admit (or not) a local copy.
  servers_.at(home).cache->on_request(info.id, info.size);

  // Coalescing: join a still-active stream of the same title to the same
  // home if it started recently enough (the joiner shares the multicast
  // delivery; only the leader session carries transfer state).  Classed
  // requests only join a leader of their own class — a premium joiner
  // riding a background leader would inherit its weight and shedding
  // order.
  if (options_.coalesce_window_seconds > 0.0) {
    const auto key = std::make_pair(home, info.id);
    const auto batch = batches_.find(key);
    if (batch != batches_.end()) {
      const auto& [leader, started] = batch->second;
      // The leader may already be retired (failed over, finished): such a
      // batch is dead and must never absorb a new request.
      auto* leader_slot = sessions_.find(leader);
      const bool joinable =
          leader_slot != nullptr && (*leader_slot)->active() &&
          sim_.now() - started <= options_.coalesce_window_seconds;
      if (joinable &&
          (!options_.qos.enabled || (*leader_slot)->user_class() == cls)) {
        stream::Session& leader_session = **leader_slot;
        ++coalesced_;
        // The joiner's completion coincides with the leader's.
        leader_session.add_done_callback(std::move(on_done));
        VOD_LOG_DEBUG("service: coalesced request onto session "
                      << leader.value());
        if (obs::TraceRecorder* tr = obs::trace_sink()) {
          tr->instant(obs::Subsystem::kService, "service.coalesce",
                      {{"leader", obs::num(static_cast<std::uint64_t>(
                           leader.value()))}});
        }
        return leader;
      }
      // Dead or expired batches are dropped here; a live batch of another
      // class is merely passed over (the spawn below takes over the key).
      if (!joinable) batches_.erase(batch);
    }
  }

  const SessionId id =
      spawn_session(home, info, cls, std::move(on_done),
                    retry_limit_for(cls),
                    Duration{options_.failover.retry_backoff_seconds},
                    /*register_batch=*/true);
  VOD_LOG_INFO("service: session " << id.value() << " for video "
                                   << info.title << " at "
                                   << topology_.node_name(home));
  return id;
}

SessionId VodService::spawn_session(NodeId home, const db::VideoInfo& info,
                                    UserClass cls,
                                    stream::Session::DoneCallback on_done,
                                    int retries_left, Duration backoff,
                                    bool register_batch) {
  const SessionId id{next_session_++};
  // The session-lifecycle metrics observer runs before the user/retry
  // callback so counters and histograms are settled by the time callers
  // inspect the service; it also retires the session (record + deferred
  // destruction) first, so the retry wrapper finds a record to annotate.
  auto done =
      wrap_with_retry(id, home, info, cls, std::move(on_done), retries_left,
                      backoff);
  auto observed = [this, id, cls, done = std::move(done)](
                      const stream::Session& session) {
    --active_sessions_;
    const stream::SessionMetrics& m = session.metrics();
    if (m.failed) {
      ++sessions_failed_;
    } else {
      ++sessions_finished_;
      startup_delay_hist_.observe(m.startup_delay());
      if (m.download_completed_at) {
        download_hist_.observe(*m.download_completed_at - m.requested_at);
      }
    }
    stall_hist_.observe(m.rebuffer_seconds);
    if (options_.qos.enabled) {
      ++qos_counter(cls, m.failed ? "failed" : "finished");
      qos_histogram(cls, "stall_seconds", {1, 5, 15, 60, 300, 900})
          .observe(m.rebuffer_seconds);
      for (const double latency : m.failover_latencies) {
        qos_histogram(cls, "failover_latency_seconds",
                      {0.1, 0.5, 1, 5, 15, 60})
            .observe(latency);
      }
    }
    if (obs::TraceRecorder* tr = obs::trace_sink()) {
      tr->counter(obs::Subsystem::kService, "service.active_sessions",
                  static_cast<double>(active_sessions_));
    }
    retire_session(id, session);
    if (done) done(session);
  };
  ObjectPool<stream::Session>::Ptr session =
      session_pool_.make(sim_, transfers_, *policy_, info, home,
                         options_.cluster_size, session_options_for(cls),
                         std::move(observed));
  stream::Session& ref = *session;
  ref.set_trace_id(id.value());
  sessions_.insert(id, std::move(session));
  if (register_batch && options_.coalesce_window_seconds > 0.0) {
    batches_[std::make_pair(home, info.id)] = std::make_pair(id, sim_.now());
    schedule_batch_expiry();
  }
  ++active_sessions_;
  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    tr->counter(obs::Subsystem::kService, "service.active_sessions",
                static_cast<double>(active_sessions_));
  }
  ref.start();
  return id;
}

stream::Session::DoneCallback VodService::wrap_with_retry(
    SessionId id, NodeId home, const db::VideoInfo& info, UserClass cls,
    stream::Session::DoneCallback on_done, int retries_left,
    Duration backoff) {
  if (retries_left <= 0) return on_done;
  return [this, id, home, info, cls, on_done = std::move(on_done),
          retries_left, backoff](const stream::Session& session) {
    if (!session.metrics().failed) {
      if (on_done) on_done(session);
      return;
    }
    // The request outlives this session: re-submit after the backoff and
    // hand the user callback to the retry.  The chain bookkeeping lives on
    // the session's retired record (created just before this wrapper ran),
    // so it is pruned together with the records instead of growing in side
    // maps across retry storms.
    if (SessionRecord* record = record_of(id)) record->superseded = true;
    ++service_retries_;
    const Duration next_backoff{
        std::min(backoff.seconds() * options_.failover.retry_backoff_factor,
                 options_.failover.retry_backoff_max_seconds)};
    VOD_LOG_INFO("service: session " << id.value() << " failed ("
                                     << session.metrics().failure_reason
                                     << "); retrying in " << backoff);
    if (obs::TraceRecorder* tr = obs::trace_sink()) {
      tr->instant(
          obs::Subsystem::kService, "service.retry",
          {{"sid", obs::num(static_cast<std::uint64_t>(id.value()))},
           {"backoff_s", obs::num(backoff.seconds())}});
    }
    // The retry re-enters at the session's own class: a preempted
    // background session comes back as background (and may be preempted
    // again), never promoted by the detour through the retry chain.
    sim_.schedule_in(
        backoff,
        [this, id, home, info, cls, on_done, retries_left,
         next_backoff](SimTime) {
          const SessionId retry =
              spawn_session(home, info, cls, on_done, retries_left - 1,
                            next_backoff, /*register_batch=*/false);
          if (SessionRecord* record = record_of(id)) {
            record->retried_as = retry;
          }
        });
  };
}

VodService::AdmissionOutcome VodService::request_with_admission(
    NodeId home, VideoId video, double headroom,
    stream::Session::DoneCallback on_done) {
  const auto info = db_.full_view().video(video);
  require(info, "request_with_admission: unknown video");
  require(topology_.has_node(home), "request_with_admission: unknown home");
  const auto decision = vra_->select_server(home, video);
  if (!decision) {
    // The DMA still counts the demand even when nothing can serve it.
    servers_.at(home).cache->on_request(video, info->size);
    return AdmissionOutcome{Admission::kNoServer, std::nullopt, {}};
  }
  const AdmissionController admission{
      db_.limited_view(admin_),
      AdmissionOptions{.required_headroom = headroom}};
  if (!admission.admit(*decision, info->bitrate)) {
    servers_.at(home).cache->on_request(video, info->size);
    ++rejected_;
    VOD_LOG_INFO("service: rejected request for " << info->title
                                                  << " (no QoS headroom)");
    if (obs::TraceRecorder* tr = obs::trace_sink()) {
      tr->instant(
          obs::Subsystem::kService, "service.reject",
          {{"home", topology_.node_name(home)},
           {"video", obs::num(static_cast<std::uint64_t>(video.value()))}});
    }
    return AdmissionOutcome{Admission::kRejected, std::nullopt, {}};
  }
  ++admitted_;
  const SessionId id = request_at(home, video, std::move(on_done));
  return AdmissionOutcome{Admission::kAdmitted, id, {}};
}

VodService::AdmissionOutcome VodService::request_classed(
    NodeId home, VideoId video, UserClass cls, double headroom,
    stream::Session::DoneCallback on_done) {
  const auto info = db_.full_view().video(video);
  require(info, "request_classed: unknown video");
  require(topology_.has_node(home), "request_classed: unknown home node");
  const bool qos = options_.qos.enabled;
  if (qos) ++qos_counter(cls, "requests");

  const auto decision = vra_->select_server(home, video);
  if (!decision) {
    // The DMA still counts the demand even when nothing can serve it.
    servers_.at(home).cache->on_request(video, info->size);
    if (qos) ++qos_counter(cls, "no_server");
    return AdmissionOutcome{Admission::kNoServer, std::nullopt, {}};
  }

  AdmissionOptions admission_options{.required_headroom = headroom};
  if (qos) {
    for (std::size_t c = 0; c < kUserClassCount; ++c) {
      admission_options.class_headroom[c] =
          options_.qos.policies[c].admission_headroom;
    }
  }
  const AdmissionController admission{db_.limited_view(admin_),
                                      admission_options};
  if (admission.admit(*decision, info->bitrate, cls)) {
    ++admitted_;
    if (qos) ++qos_counter(cls, "admitted");
    const SessionId id =
        request_at_impl(home, *info, cls, std::move(on_done));
    return AdmissionOutcome{Admission::kAdmitted, id, {}};
  }

  // Plain admission failed.  Preemption may still carve out room — but
  // only by sacrificing strictly lower classes, and only when the whole
  // deficit is coverable (nobody is aborted for a plan that cannot fit
  // the request anyway).
  if (qos && options_.qos.allow_preemption && !decision->served_locally) {
    const auto victims =
        plan_preemption(decision->path.links,
                        admission.required_rate(info->bitrate, cls), cls);
    if (victims) {
      // One allocation epoch for the whole sacrifice: the fair shares are
      // re-solved once, after every victim's flow is torn down.
      {
        const net::FluidNetwork::BatchGuard epoch =
            network_.defer_reallocate();
        for (const SessionId victim : *victims) {
          auto* slot = sessions_.find(victim);
          if (slot == nullptr || !(*slot)->active()) continue;
          ++preemption_victims_;
          ++qos_counter((*slot)->user_class(), "preempted");
          VOD_LOG_INFO("service: preempting session " << victim.value());
          if (obs::TraceRecorder* tr = obs::trace_sink()) {
            tr->instant(obs::Subsystem::kService, "service.preempt",
                        {{"victim", obs::num(static_cast<std::uint64_t>(
                             victim.value()))}});
          }
          (*slot)->abort(kPreemptedReason);
        }
      }
      ++admitted_;
      ++preempted_admits_;
      ++qos_counter(cls, "admitted");
      ++qos_counter(cls, "preempted_admits");
      // A committed sacrifice is an anomaly worth a black box: victims are
      // aborted, the admission went through over their dead flows.
      if (obs::FlightRecorder* fr = obs::flight_recorder()) {
        fr->trigger("preemption");
      }
      const SessionId id =
          request_at_impl(home, *info, cls, std::move(on_done));
      return AdmissionOutcome{Admission::kPreempted, id,
                              std::move(*victims)};
    }
  }

  servers_.at(home).cache->on_request(video, info->size);
  ++rejected_;
  if (qos) ++qos_counter(cls, "rejected");
  VOD_LOG_INFO("service: rejected " << to_string(cls) << " request for "
                                    << info->title << " (no QoS headroom)");
  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    tr->instant(
        obs::Subsystem::kService, "service.reject",
        {{"home", topology_.node_name(home)},
         {"video", obs::num(static_cast<std::uint64_t>(video.value()))}});
  }
  return AdmissionOutcome{Admission::kRejected, std::nullopt, {}};
}

std::optional<std::vector<SessionId>> VodService::plan_preemption(
    const std::vector<LinkId>& path, Mbps required, UserClass cls) {
  if (path.empty()) return std::nullopt;
  // Per-link deficits against the same slightly-stale limited-access
  // statistics the admission check read.  A severed (offline) link cannot
  // be mended by shedding load, so no plan exists for it.
  const db::LimitedAccessView view = db_.limited_view(admin_);
  std::vector<LinkId> short_links;
  std::vector<double> deficit;
  for (const LinkId link : path) {
    const db::LinkRecord& record = view.link(link);
    if (!record.online) return std::nullopt;
    const double free = std::max(
        0.0, (record.total_bandwidth - record.used_bandwidth).value());
    if (free < required.value()) {
      short_links.push_back(link);
      deficit.push_back(required.value() - free);
    }
  }
  if (short_links.empty()) return std::nullopt;

  // Candidates: active sessions of a strictly lower class currently
  // delivering across at least one short link.  What their abort frees on
  // those links is their present fluid rate — the one number that is
  // actually true right now, unlike the stale DB residuals.
  struct Candidate {
    SessionId id;
    UserClass cls;
    double rate;
    std::vector<std::size_t> hits;  // indices into short_links
  };
  std::vector<Candidate> candidates;
  sessions_.for_each_ordered(
      [&](SessionId id, ObjectPool<stream::Session>::Ptr& session) {
        if (!session->active()) return;
        const UserClass victim_cls = session->user_class();
        if (!outranks(cls, victim_cls)) return;
        const double rate = session->inflight_rate().value();
        if (rate <= 0.0) return;  // nothing reclaimable right now
        std::vector<std::size_t> hits;
        const std::vector<LinkId>& links = session->inflight_links();
        for (std::size_t s = 0; s < short_links.size(); ++s) {
          if (std::find(links.begin(), links.end(), short_links[s]) !=
              links.end()) {
            hits.push_back(s);
          }
        }
        if (!hits.empty()) {
          candidates.push_back(
              Candidate{id, victim_cls, rate, std::move(hits)});
        }
      });

  // Rank: lowest class first, youngest first within a class.  Both keys
  // are total orders, so the plan is deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.cls != b.cls) {
                return class_index(a.cls) > class_index(b.cls);
              }
              return a.id.value() > b.id.value();
            });

  std::vector<SessionId> plan;
  std::size_t uncovered = short_links.size();
  for (const Candidate& candidate : candidates) {
    if (uncovered == 0) break;
    bool helps = false;
    for (const std::size_t s : candidate.hits) {
      if (deficit[s] > 0.0) helps = true;
    }
    if (!helps) continue;  // its links are already covered — spare it
    plan.push_back(candidate.id);
    for (const std::size_t s : candidate.hits) {
      if (deficit[s] <= 0.0) continue;
      deficit[s] -= candidate.rate;
      if (deficit[s] <= 0.0) --uncovered;
    }
  }
  if (uncovered > 0) return std::nullopt;
  return plan;
}

int VodService::retry_limit_for(UserClass cls) const {
  if (!options_.qos.enabled) return options_.failover.retry_limit;
  const int limit = options_.qos.policies[class_index(cls)].retry_limit;
  return limit < 0 ? options_.failover.retry_limit : limit;
}

stream::SessionOptions VodService::session_options_for(UserClass cls) const {
  stream::SessionOptions session_options = options_.session;
  if (!options_.qos.enabled) return session_options;
  const ClassPolicy& policy = options_.qos.policies[class_index(cls)];
  session_options.user_class = cls;
  session_options.flow_weight = policy.flow_weight;
  session_options.stall_timeout_scale = policy.stall_timeout_scale;
  return session_options;
}

obs::Counter& VodService::qos_counter(UserClass cls, const char* what) {
  return metrics_.counter(std::string("qos.") + to_string(cls) + "." + what);
}

obs::Histogram& VodService::qos_histogram(UserClass cls, const char* what,
                                          std::vector<double> upper_bounds) {
  return metrics_.histogram(
      std::string("qos.") + to_string(cls) + "." + what,
      std::move(upper_bounds));
}

UserClass VodService::session_class(SessionId id) const {
  if (const auto* slot = sessions_.find(id)) return (*slot)->user_class();
  const SessionRecord* record = record_of(id);
  require_found(record != nullptr,
      "VodService::session_class: unknown session");
  return record->user_class;
}

db::LimitedAccessView VodService::admin_view() {
  return db_.limited_view(admin_);
}

template <typename Predicate>
void VodService::notify_sessions(const Predicate& predicate,
                                 const char* cause,
                                 bool black_hole_when_passive) {
  // Collect first: fail_over() can complete or fail a session, whose done
  // callback may submit new requests and grow sessions_ while we iterate.
  std::vector<stream::Session*> affected;
  sessions_.for_each_ordered(
      [&](SessionId, ObjectPool<stream::Session>::Ptr& session) {
        if (!session->active()) return;
        if (predicate(*session)) affected.push_back(session.get());
      });
  // Shed strictly bottom-up by class: premium failovers route (and grab
  // residual capacity) first, background last.  The sort is stable over
  // the ascending-id collection order, so a single-class population keeps
  // the exact pre-QoS notification order.
  std::stable_sort(affected.begin(), affected.end(),
                   [](const stream::Session* a, const stream::Session* b) {
                     return class_index(a->user_class()) <
                            class_index(b->user_class());
                   });
  // One allocation epoch for the whole storm: every failover in the sweep
  // tears down one flow and starts another, and the fair shares are
  // re-solved once when the guard releases.  The network mutation that
  // caused the fault (link cut, if any) happened before this call, so
  // transfers drained by the fault instant have already completed.
  const net::FluidNetwork::BatchGuard epoch = network_.defer_reallocate();
  for (stream::Session* session : affected) {
    session->mark_source_fault(sim_.now());
    if (options_.failover.proactive) {
      session->fail_over(cause);
    } else if (black_hole_when_passive) {
      session->black_hole_inflight();
    }
  }
}

void VodService::fail_link(LinkId link) {
  if (!network_.link_up(link)) return;
  network_.set_link_up(link, false);
  if (options_.failover.proactive) {
    // The connection reset travels faster than the next SNMP poll: tell
    // the database (and through it the VRA) right away.
    admin_view().set_link_online(link, false);
  }
  notify_sessions(
      [link](const stream::Session& session) {
        const auto& links = session.inflight_links();
        return std::find(links.begin(), links.end(), link) != links.end();
      },
      "link down",
      // A cut link already starves the flow (rate 0); the watchdog-only
      // baseline needs no extra black-holing.
      /*black_hole_when_passive=*/false);
}

void VodService::restore_link(LinkId link) {
  if (network_.link_up(link)) return;
  network_.set_link_up(link, true);
  if (options_.failover.proactive) {
    admin_view().set_link_online(link, true);
  }
}

void VodService::crash_server(NodeId server) {
  require_found(servers_.contains(server),
      "VodService::crash_server: unknown server");
  const auto pos = std::lower_bound(crashed_servers_.begin(),
                                    crashed_servers_.end(), server);
  if (pos != crashed_servers_.end() && *pos == server) return;
  crashed_servers_.insert(pos, server);
  // Both modes: the VRA polls candidate servers per request, and a crashed
  // box answers no poll — only the *reaction of running sessions* differs.
  set_server_online(server, false);
  notify_sessions(
      [server](const stream::Session& session) {
        const auto source = session.streaming_source();
        return source && *source == server;
      },
      "source server crashed",
      // Links stay up when a server dies, so without black-holing the
      // in-flight transfer would absurdly keep delivering.
      /*black_hole_when_passive=*/true);
}

void VodService::restore_server(NodeId server) {
  require_found(servers_.contains(server),
      "VodService::restore_server: unknown server");
  const auto pos = std::lower_bound(crashed_servers_.begin(),
                                    crashed_servers_.end(), server);
  if (pos == crashed_servers_.end() || *pos != server) return;
  crashed_servers_.erase(pos);
  // The restarted server still holds its disk contents; it re-registers as
  // online and the VRA may select it again immediately.
  set_server_online(server, true);
}

std::optional<SessionId> VodService::retried_as(SessionId id) const {
  const SessionRecord* record = record_of(id);
  if (record == nullptr || !record->retried_as.valid()) return std::nullopt;
  return record->retried_as;
}

void VodService::retire_session(SessionId id,
                                const stream::Session& session) {
  if (options_.retention == SessionRetention::kSummaries) {
    if (retired_.size() <= id.value()) {
      retired_.resize(static_cast<std::size_t>(id.value()) + 1);
    }
    retired_[id.value()] = SessionRecord{session.metrics(), session.home(),
                                         session.video(),
                                         session.user_class()};
  }
  // Destruction is deferred to a same-instant sweep event: this runs
  // inside the session's own done-callback stack, where `delete this`
  // territory begins.  Same-time events fire in scheduling order, so the
  // sweep runs after the current event finishes, before time advances.
  retire_queue_.push_back(id);
  if (!retire_sweep_scheduled_) {
    retire_sweep_scheduled_ = true;
    sim_.schedule_at(sim_.now(), [this](SimTime) { sweep_retired(); });
  }
}

void VodService::sweep_retired() {
  retire_sweep_scheduled_ = false;
  // The queue is drained into a local: a destructor must not invalidate
  // the iteration if some future session type ever completes others.
  std::vector<SessionId> queue = std::move(retire_queue_);
  retire_queue_.clear();
  for (const SessionId id : queue) {
    auto* slot = sessions_.find(id);
    if (slot == nullptr) continue;
    // A batch led by this session can never absorb another request; drop
    // it now rather than waiting for a lookup or the expiry sweep.
    const auto key = std::make_pair((*slot)->home(), (*slot)->video().id);
    const auto batch = batches_.find(key);
    if (batch != batches_.end() && batch->second.first == id) {
      batches_.erase(batch);
    }
    sessions_.erase(id);
  }
}

SessionRecord* VodService::record_of(SessionId id) {
  if (!id.valid() || id.value() >= retired_.size()) return nullptr;
  auto& record = retired_[id.value()];
  return record ? &*record : nullptr;
}

const SessionRecord* VodService::record_of(SessionId id) const {
  if (!id.valid() || id.value() >= retired_.size()) return nullptr;
  const auto& record = retired_[id.value()];
  return record ? &*record : nullptr;
}

void VodService::schedule_batch_expiry() {
  if (batch_expiry_scheduled_ || batches_.empty()) return;
  batch_expiry_scheduled_ = true;
  sim_.schedule_in(
      Duration{options_.coalesce_window_seconds}, [this](SimTime now) {
        batch_expiry_scheduled_ = false;
        for (auto it = batches_.begin(); it != batches_.end();) {
          // Strictly-older only: an entry exactly one window old is still
          // joinable by the lookup path (<= window), so it survives to the
          // next sweep.
          if (now - it->second.second > options_.coalesce_window_seconds) {
            it = batches_.erase(it);
          } else {
            ++it;
          }
        }
        schedule_batch_expiry();  // re-arm while entries remain
      });
}

void VodService::set_server_online(NodeId server, bool online) {
  admin_view().set_server_online(server, online);
}

std::vector<VideoId> VodService::fail_disk(NodeId server, std::size_t slot) {
  const auto it = servers_.find(server);
  require_found(it != servers_.end(), "VodService::fail_disk: unknown server");
  // The DMA reports the casualties through its eviction callback, which
  // already removes them from the server's database entry.
  return it->second.cache->handle_disk_failure(slot);
}

stream::Session& VodService::session(SessionId id) {
  auto* slot = sessions_.find(id);
  require_found(slot != nullptr,
      "VodService::session: unknown or retired session");
  return **slot;
}

const stream::Session& VodService::session(SessionId id) const {
  const auto* slot = sessions_.find(id);
  require_found(slot != nullptr,
      "VodService::session: unknown or retired session");
  return **slot;
}

const stream::SessionMetrics& VodService::session_metrics(
    SessionId id) const {
  if (const auto* slot = sessions_.find(id)) return (*slot)->metrics();
  const SessionRecord* record = record_of(id);
  require_found(record != nullptr,
      "VodService::session_metrics: unknown session (or retired without a "
      "record under kCountersOnly retention)");
  return record->metrics;
}

NodeId VodService::session_home(SessionId id) const {
  if (const auto* slot = sessions_.find(id)) return (*slot)->home();
  const SessionRecord* record = record_of(id);
  require_found(record != nullptr,
      "VodService::session_home: unknown session");
  return record->home;
}

const db::VideoInfo& VodService::session_video(SessionId id) const {
  if (const auto* slot = sessions_.find(id)) return (*slot)->video();
  const SessionRecord* record = record_of(id);
  require_found(record != nullptr,
      "VodService::session_video: unknown session");
  return record->video;
}

std::vector<SessionId> VodService::session_ids() const {
  std::vector<SessionId> out;
  out.reserve(sessions_.size() + retired_.size());
  // Ids are issued sequentially from 0, so one ascending pass over the id
  // space merges active and retired in order.
  for (SessionId::underlying_type v = 0; v < next_session_; ++v) {
    const SessionId id{v};
    if (sessions_.contains(id) || record_of(id) != nullptr) {
      out.push_back(id);
    }
  }
  return out;
}

dma::DmaCache& VodService::dma_cache(NodeId server) {
  const auto it = servers_.find(server);
  require_found(it != servers_.end(), "VodService::dma_cache: unknown server");
  return *it->second.cache;
}

}  // namespace vod::service
