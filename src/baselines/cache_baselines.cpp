#include "baselines/cache_baselines.h"

#include <stdexcept>

#include "common/contract.h"

namespace vod::baselines {

LruTitleCache::LruTitleCache(MegaBytes capacity) : capacity_(capacity) {
  require(!(capacity.value() <= 0.0),
      "LruTitleCache: capacity must be positive");
}

void LruTitleCache::evict_one() {
  const auto& [video, size] = order_.back();
  used_ -= size;
  index_.erase(video);
  order_.pop_back();
}

bool LruTitleCache::on_request(VideoId video, MegaBytes size) {
  require(!(size.value() <= 0.0), "LruTitleCache: size must be positive");
  const auto it = index_.find(video);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);  // move to front
    return true;
  }
  if (size > capacity_) return false;  // cannot ever fit
  while (used_ + size > capacity_ && !order_.empty()) evict_one();
  order_.emplace_front(video, size);
  index_[video] = order_.begin();
  used_ += size;
  return false;
}

LfuTitleCache::LfuTitleCache(MegaBytes capacity) : capacity_(capacity) {
  require(!(capacity.value() <= 0.0),
      "LfuTitleCache: capacity must be positive");
}

void LfuTitleCache::evict_one() {
  // Least-frequent cached title; ties toward the lowest id (determinism).
  VideoId victim;
  std::uint64_t fewest = 0;
  for (const auto& [video, size] : cached_) {
    const std::uint64_t f = frequency_[video];
    if (!victim.valid() || f < fewest) {
      victim = video;
      fewest = f;
    }
  }
  used_ -= cached_.at(victim);
  cached_.erase(victim);
}

bool LfuTitleCache::on_request(VideoId video, MegaBytes size) {
  require(!(size.value() <= 0.0), "LfuTitleCache: size must be positive");
  ++frequency_[video];
  if (cached_.contains(video)) return true;
  if (size > capacity_) return false;
  while (used_ + size > capacity_ && !cached_.empty()) evict_one();
  cached_.emplace(video, size);
  used_ += size;
  return false;
}

}  // namespace vod::baselines
