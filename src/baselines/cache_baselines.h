// Baseline caching policies to compare against the DMA.
//
// A TitleCache answers, per request, whether the title was served from the
// local cache, updating its contents on the way — the common interface the
// Figure-2 bench uses to put DMA, LRU, LFU and no-cache side by side.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "common/ids.h"
#include "common/units.h"
#include "dma/dma_cache.h"

namespace vod::baselines {

/// Per-request cache behaviour under a byte-capacity budget.
class TitleCache {
 public:
  virtual ~TitleCache() = default;

  /// Processes one request; returns true when it was a cache hit.
  virtual bool on_request(VideoId video, MegaBytes size) = 0;

  [[nodiscard]] virtual bool contains(VideoId video) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The paper's DMA over a real striped disk array.
class DmaTitleCache final : public TitleCache {
 public:
  /// `cache` must outlive this adapter.
  explicit DmaTitleCache(dma::DmaCache& cache) : cache_(cache) {}

  bool on_request(VideoId video, MegaBytes size) override {
    return cache_.on_request(video, size) == dma::DmaOutcome::kHit;
  }
  [[nodiscard]] bool contains(VideoId video) const override {
    return cache_.cached(video);
  }
  [[nodiscard]] const char* name() const override { return "DMA"; }

 private:
  dma::DmaCache& cache_;
};

/// Classic byte-bounded LRU: always admit, evict least-recently used.
class LruTitleCache final : public TitleCache {
 public:
  explicit LruTitleCache(MegaBytes capacity);

  bool on_request(VideoId video, MegaBytes size) override;
  [[nodiscard]] bool contains(VideoId video) const override {
    return index_.contains(video);
  }
  [[nodiscard]] const char* name() const override { return "LRU"; }

 private:
  void evict_one();

  MegaBytes capacity_;
  MegaBytes used_{0.0};
  std::list<std::pair<VideoId, MegaBytes>> order_;  // front = most recent
  std::unordered_map<VideoId, decltype(order_)::iterator> index_;
};

/// Byte-bounded LFU: always admit, evict least-frequently used.
class LfuTitleCache final : public TitleCache {
 public:
  explicit LfuTitleCache(MegaBytes capacity);

  bool on_request(VideoId video, MegaBytes size) override;
  [[nodiscard]] bool contains(VideoId video) const override {
    return cached_.contains(video);
  }
  [[nodiscard]] const char* name() const override { return "LFU"; }

 private:
  void evict_one();

  MegaBytes capacity_;
  MegaBytes used_{0.0};
  std::map<VideoId, MegaBytes> cached_;
  std::map<VideoId, std::uint64_t> frequency_;  // of all titles ever seen
};

/// Caches nothing: every request goes to the network.
class NoTitleCache final : public TitleCache {
 public:
  bool on_request(VideoId, MegaBytes) override { return false; }
  [[nodiscard]] bool contains(VideoId) const override { return false; }
  [[nodiscard]] const char* name() const override { return "none"; }
};

}  // namespace vod::baselines
