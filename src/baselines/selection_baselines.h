// Baseline server-selection policies.
//
// The paper argues the VRA beats naive selection; these are the naive
// selectors the comparison benches measure it against:
//   * RandomHolderPolicy  — any server with the title, routed min-hop
//   * NearestByHopsPolicy — the topologically closest holder (static
//                           routing-table behaviour, no load awareness)
//   * StaticOncePolicy    — decide like the VRA at session start but never
//                           re-evaluate (isolates the value of the paper's
//                           continuous re-routing)
#pragma once

#include <map>
#include <optional>
#include <utility>

#include "common/ids.h"
#include "common/rng.h"
#include "db/database.h"
#include "net/topology.h"
#include "stream/policy.h"

namespace vod::baselines {

/// Uniformly random online holder; min-hop route.
class RandomHolderPolicy final : public stream::ServerSelectionPolicy {
 public:
  RandomHolderPolicy(const net::Topology& topology,
                     db::FullAccessView catalog,
                     db::LimitedAccessView network_state, Rng rng);

  [[nodiscard]] std::optional<stream::Selection> select(
      NodeId home, VideoId video) override;
  [[nodiscard]] const char* name() const override { return "random"; }

 private:
  const net::Topology& topology_;
  db::FullAccessView catalog_;
  db::LimitedAccessView network_state_;
  Rng rng_;
};

/// The holder with the fewest hops from home (ties: lowest node id).
class NearestByHopsPolicy final : public stream::ServerSelectionPolicy {
 public:
  NearestByHopsPolicy(const net::Topology& topology,
                      db::FullAccessView catalog,
                      db::LimitedAccessView network_state);

  [[nodiscard]] std::optional<stream::Selection> select(
      NodeId home, VideoId video) override;
  [[nodiscard]] const char* name() const override { return "nearest"; }

 private:
  const net::Topology& topology_;
  db::FullAccessView catalog_;
  db::LimitedAccessView network_state_;
};

/// Delegates the first decision per (home, video) to an inner policy, then
/// repeats it forever — the "no mid-stream re-routing" ablation.
class StaticOncePolicy final : public stream::ServerSelectionPolicy {
 public:
  /// `inner` must outlive this policy.
  explicit StaticOncePolicy(stream::ServerSelectionPolicy& inner)
      : inner_(inner) {}

  [[nodiscard]] std::optional<stream::Selection> select(
      NodeId home, VideoId video) override;
  [[nodiscard]] const char* name() const override { return "static-once"; }

  /// Forgets all cached decisions (call between benchmark repetitions).
  void reset() { cache_.clear(); }

 private:
  stream::ServerSelectionPolicy& inner_;
  std::map<std::pair<NodeId, VideoId>, stream::Selection> cache_;
};

}  // namespace vod::baselines
