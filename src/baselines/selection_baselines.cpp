#include "baselines/selection_baselines.h"

#include <algorithm>
#include <vector>

#include "routing/min_hop.h"

namespace vod::baselines {

namespace {

/// Online holders of `video`, ascending node id.
std::vector<NodeId> online_holders(const db::FullAccessView& catalog,
                                   const db::LimitedAccessView& state,
                                   VideoId video) {
  std::vector<NodeId> holders = catalog.servers_with_title(video);
  std::erase_if(holders, [&](NodeId server) {
    return !state.server(server).online;
  });
  std::sort(holders.begin(), holders.end());
  return holders;
}

/// The topology as an unweighted routing graph.
routing::Graph hop_graph(const net::Topology& topology) {
  routing::Graph graph;
  for (std::size_t n = 0; n < topology.node_count(); ++n) {
    graph.add_node(
        topology.node_name(NodeId{static_cast<NodeId::underlying_type>(n)}));
  }
  for (const net::LinkInfo& info : topology.links()) {
    graph.add_undirected_edge(info.a, info.b, info.id, 1.0);
  }
  return graph;
}

}  // namespace

RandomHolderPolicy::RandomHolderPolicy(const net::Topology& topology,
                                       db::FullAccessView catalog,
                                       db::LimitedAccessView network_state,
                                       Rng rng)
    : topology_(topology),
      catalog_(catalog),
      network_state_(network_state),
      rng_(std::move(rng)) {}

std::optional<stream::Selection> RandomHolderPolicy::select(NodeId home,
                                                            VideoId video) {
  const auto holders = online_holders(catalog_, network_state_, video);
  if (holders.empty()) return std::nullopt;
  const NodeId server = holders[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(holders.size()) - 1))];
  if (server == home) {
    return stream::Selection{server, routing::Path{{home}, {}, 0.0}};
  }
  const routing::Graph graph = hop_graph(topology_);
  auto path = routing::min_hop_path(graph, home, server);
  if (!path) return std::nullopt;
  return stream::Selection{server, std::move(*path)};
}

NearestByHopsPolicy::NearestByHopsPolicy(const net::Topology& topology,
                                         db::FullAccessView catalog,
                                         db::LimitedAccessView network_state)
    : topology_(topology),
      catalog_(catalog),
      network_state_(network_state) {}

std::optional<stream::Selection> NearestByHopsPolicy::select(NodeId home,
                                                             VideoId video) {
  const auto holders = online_holders(catalog_, network_state_, video);
  if (holders.empty()) return std::nullopt;
  const routing::Graph graph = hop_graph(topology_);

  std::optional<stream::Selection> best;
  for (const NodeId server : holders) {
    if (server == home) {
      return stream::Selection{server, routing::Path{{home}, {}, 0.0}};
    }
    auto path = routing::min_hop_path(graph, home, server);
    if (!path) continue;
    if (!best || path->cost < best->path.cost) {
      best = stream::Selection{server, std::move(*path)};
    }
  }
  return best;
}

std::optional<stream::Selection> StaticOncePolicy::select(NodeId home,
                                                          VideoId video) {
  const auto key = std::make_pair(home, video);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto selection = inner_.select(home, video);
  if (selection) cache_.emplace(key, *selection);
  return selection;
}

}  // namespace vod::baselines
