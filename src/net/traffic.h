// Background (non-VoD) traffic models.
//
// The paper's case study drives the VRA with real SNMP measurements of the
// GRNET backbone (Table 2).  We reproduce that with TraceTraffic — a
// per-link piecewise-linear load trace — and additionally provide synthetic
// generators (constant load, diurnal curve) for the larger studies the
// paper's testbed could not run.
#pragma once

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/units.h"

namespace vod::net {

/// Time-varying background load per link (traffic that is not ours, e.g.
/// the rest of the university network's flows).
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  /// Non-VoD bandwidth in use on `link` at time `t`.
  [[nodiscard]] virtual Mbps background_load(LinkId link, SimTime t) const = 0;

  /// The next instant strictly after `t` at which some link's background
  /// load changes (so transfer schedules can be refreshed exactly then).
  /// Returns SimTime{infinity} if the model is constant from `t` on.
  [[nodiscard]] virtual SimTime next_change_after(SimTime t) const;
};

/// Zero background traffic everywhere (an idle network).
class NoTraffic final : public TrafficModel {
 public:
  [[nodiscard]] Mbps background_load(LinkId, SimTime) const override {
    return Mbps{0.0};
  }
};

/// A fixed load per link, constant over time.
class ConstantTraffic final : public TrafficModel {
 public:
  void set_load(LinkId link, Mbps load);
  [[nodiscard]] Mbps background_load(LinkId link, SimTime t) const override;

 private:
  std::map<LinkId, Mbps> loads_;
};

/// Trace-driven load: per-link (time, load) samples with step interpolation
/// (the load holds its value until the next sample — matching how SNMP
/// counters present interval averages).
class TraceTraffic final : public TrafficModel {
 public:
  /// Appends a sample; samples for each link must be added in increasing
  /// time order.  Load must be non-negative.
  void add_sample(LinkId link, SimTime t, Mbps load);

  [[nodiscard]] Mbps background_load(LinkId link, SimTime t) const override;
  [[nodiscard]] SimTime next_change_after(SimTime t) const override;

 private:
  std::map<LinkId, std::vector<std::pair<SimTime, Mbps>>> samples_;
};

/// Repeats another model with a fixed period: time t is mapped to
/// t mod period before delegating.  Wrapping the Table 2 trace with a
/// 24 h period turns the paper's one-day measurement into an arbitrarily
/// long simulated campaign.
class PeriodicTraffic final : public TrafficModel {
 public:
  /// `inner` must outlive this wrapper; `period` > 0.
  PeriodicTraffic(const TrafficModel& inner, Duration period);

  [[nodiscard]] Mbps background_load(LinkId link, SimTime t) const override;
  [[nodiscard]] SimTime next_change_after(SimTime t) const override;

 private:
  const TrafficModel& inner_;
  Duration period_;
};

/// Synthetic diurnal load: a smooth day curve peaking at `peak_hour`, scaled
/// per link to a fraction of capacity.  Deterministic — no noise — so runs
/// are reproducible; callers wanting jitter add it through TraceTraffic.
class DiurnalTraffic final : public TrafficModel {
 public:
  struct LinkShape {
    Mbps capacity;            // the link's total bandwidth
    double base_fraction;     // load at the quietest hour, as a fraction
    double peak_fraction;     // load at the busiest hour, as a fraction
  };

  /// `peak_hour` in [0, 24).
  explicit DiurnalTraffic(double peak_hour = 14.0);

  void set_shape(LinkId link, LinkShape shape);
  [[nodiscard]] Mbps background_load(LinkId link, SimTime t) const override;
  [[nodiscard]] SimTime next_change_after(SimTime t) const override;

 private:
  double peak_hour_;
  std::map<LinkId, LinkShape> shapes_;
};

}  // namespace vod::net
