#include "net/transfer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/contract.h"

namespace vod::net {

namespace {
// Remaining sizes at or below this are "done" (guards float drift).
constexpr double kDoneEpsilonMb = 1e-9;
}  // namespace

TransferManager::TransferManager(sim::Simulation& sim, FluidNetwork& network)
    : sim_(sim), network_(network) {
  network_.set_change_hooks([this] { on_network_pre_change(); },
                            [this] { on_network_post_change(); });
}

TransferManager::~TransferManager() {
  network_.set_change_hooks({}, {});
  if (pending_.valid()) sim_.queue().cancel(pending_);
}

void TransferManager::on_network_pre_change() {
  if (busy_depth_ > 0) return;
  settle_bytes(sim_.now());
}

void TransferManager::on_network_post_change() {
  if (busy_depth_ > 0) return;
  const BusyScope guard{busy_depth_};
  complete_finished(sim_.now());
  reschedule(sim_.now());
}

FlowId TransferManager::start_transfer(std::vector<LinkId> path,
                                       MegaBytes size, Mbps rate_cap,
                                       CompletionCallback on_complete) {
  require(!(size.value() <= 0.0),
      "TransferManager::start_transfer: size must be positive");
  require(on_complete, "TransferManager::start_transfer: empty callback");
  const SimTime now = sim_.now();
  const BusyScope guard{busy_depth_};
  advance_progress(now);
  const FlowId id = network_.start_flow(std::move(path), rate_cap);
  transfers_.emplace(id, Transfer{size, std::move(on_complete)});
  reschedule(now);
  return id;
}

void TransferManager::cancel(FlowId id) {
  const auto it = transfers_.find(id);
  require_found(it != transfers_.end(),
      "TransferManager::cancel: unknown transfer");
  const SimTime now = sim_.now();
  const BusyScope guard{busy_depth_};
  advance_progress(now);
  transfers_.erase(it);
  network_.stop_flow(id);
  reschedule(now);
}

MegaBytes TransferManager::remaining(FlowId id) const {
  const auto it = transfers_.find(id);
  require_found(it != transfers_.end(),
      "TransferManager::remaining: unknown transfer");
  // Report progress as of "now" without mutating state.
  const double elapsed = sim_.now() - last_progress_;
  const double moved_mb =
      network_.flow_rate(id).value() * elapsed / 8.0;
  return MegaBytes{std::max(0.0, it->second.remaining.value() - moved_mb)};
}

Mbps TransferManager::current_rate(FlowId id) const {
  require_found(transfers_.contains(id),
      "TransferManager::current_rate: unknown");
  return network_.flow_rate(id);
}

void TransferManager::settle_bytes(SimTime now) {
  const double elapsed = now - last_progress_;
  if (elapsed > 0.0) {
    for (auto& [id, transfer] : transfers_) {
      const double moved_mb = network_.flow_rate(id).value() * elapsed / 8.0;
      transfer.remaining =
          MegaBytes{std::max(0.0, transfer.remaining.value() - moved_mb)};
    }
  }
  last_progress_ = now;
}

void TransferManager::advance_progress(SimTime now) {
  settle_bytes(now);
  if (network_.time() < now) network_.set_time(now);
}

void TransferManager::complete_finished(SimTime now) {
  // One allocation epoch for the whole sweep: a burst of simultaneous
  // completions (and whatever transfers the callbacks start) re-solves the
  // fair shares once when the guard releases, not once per stop_flow.
  // Completion is judged on settled `remaining`, never on mid-epoch rates,
  // so the sweep finishes the same transfers the per-mutation solve did;
  // the caller reschedules after this returns, reading the fresh rates.
  const FluidNetwork::BatchGuard epoch = network_.defer_reallocate();
  for (;;) {
    FlowId done;
    for (const auto& [id, transfer] : transfers_) {
      if (transfer.remaining.value() <= kDoneEpsilonMb) {
        // Deterministic pick: lowest flow id among the finished.
        if (!done.valid() || id < done) done = id;
      }
    }
    if (!done.valid()) break;
    CompletionCallback callback = std::move(transfers_.at(done).on_complete);
    transfers_.erase(done);
    network_.stop_flow(done);
    // The callback may start/cancel transfers; state is consistent here.
    callback(now);
  }
}

void TransferManager::reschedule(SimTime now) {
  if (pending_.valid()) {
    sim_.queue().cancel(pending_);
    pending_ = sim::EventHandle{};
  }
  if (transfers_.empty()) return;

  double next = std::numeric_limits<double>::infinity();
  for (const auto& [id, transfer] : transfers_) {
    const double rate = network_.flow_rate(id).value();
    next = std::min(next,
                    now.seconds() + transfer.remaining.megabits() / rate);
  }
  // Wake at background-traffic changes too, so rates stay faithful.
  next = std::min(next, network_.next_traffic_change(now).seconds());

  if (next == std::numeric_limits<double>::infinity()) return;
  pending_ =
      sim_.schedule_at(SimTime{next}, [this](SimTime t) { refresh(t); });
}

void TransferManager::refresh(SimTime now) {
  pending_ = sim::EventHandle{};
  const BusyScope guard{busy_depth_};
  advance_progress(now);
  complete_finished(now);
  reschedule(now);
}

}  // namespace vod::net
