#include "net/transfer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/contract.h"
#include "common/parallel.h"

namespace vod::net {

namespace {
// Remaining sizes at or below this are "done" (guards float drift).
constexpr double kDoneEpsilonMb = 1e-9;
}  // namespace

TransferManager::TransferManager(sim::Simulation& sim, FluidNetwork& network)
    : sim_(sim), network_(network) {
  network_.set_change_hooks([this] { on_network_pre_change(); },
                            [this] { on_network_post_change(); });
}

TransferManager::~TransferManager() {
  network_.set_change_hooks({}, {});
  if (pending_.valid()) sim_.queue().cancel(pending_);
}

void TransferManager::on_network_pre_change() {
  if (busy_depth_ > 0) return;
  settle_bytes(sim_.now());
}

void TransferManager::on_network_post_change() {
  if (busy_depth_ > 0) return;
  const BusyScope guard{busy_depth_};
  complete_finished(sim_.now());
  reschedule(sim_.now());
}

FlowId TransferManager::start_transfer(std::vector<LinkId> path,
                                       MegaBytes size, Mbps rate_cap,
                                       CompletionCallback on_complete,
                                       std::uint32_t weight) {
  require(!(size.value() <= 0.0),
      "TransferManager::start_transfer: size must be positive");
  require(on_complete, "TransferManager::start_transfer: empty callback");
  const SimTime now = sim_.now();
  const BusyScope guard{busy_depth_};
  advance_progress(now);
  const FlowId id = network_.start_flow(std::move(path), rate_cap, weight);
  transfers_.insert(id, Transfer{size, std::move(on_complete)});
  // A transfer born at or below the done epsilon never crosses it during a
  // settle, so it becomes a completion candidate outright.
  if (size.value() <= kDoneEpsilonMb) drained_.push_back(id);
  reschedule(now);
  return id;
}

void TransferManager::cancel(FlowId id) {
  require_found(transfers_.contains(id),
      "TransferManager::cancel: unknown transfer");
  const SimTime now = sim_.now();
  const BusyScope guard{busy_depth_};
  advance_progress(now);
  transfers_.erase(id);
  network_.stop_flow(id);
  reschedule(now);
}

MegaBytes TransferManager::remaining(FlowId id) const {
  const Transfer& transfer =
      transfers_.at(id, "TransferManager::remaining: unknown transfer");
  // Report progress as of "now" without mutating state.
  const double elapsed = sim_.now() - last_progress_;
  const double moved_mb =
      network_.flow_rate(id).value() * elapsed / 8.0;
  return MegaBytes{std::max(0.0, transfer.remaining.value() - moved_mb)};
}

Mbps TransferManager::current_rate(FlowId id) const {
  require_found(transfers_.contains(id),
      "TransferManager::current_rate: unknown");
  return network_.flow_rate(id);
}

void TransferManager::settle_bytes(SimTime now) {
  const double elapsed = now - last_progress_;
  if (elapsed > 0.0 && !transfers_.empty()) {
    // Parallel settle over the slot map's id window: each chunk owns a
    // contiguous range of window positions, so it writes only its own
    // transfers and crossing flags; flow rates are const lookups.  The
    // per-transfer arithmetic is exactly the serial expression, and the
    // crossing merge below runs in window (= ascending id) order, so
    // drained_ fills identically at any worker count.
    const std::size_t span = transfers_.window_span();
    settle_crossed_.assign(span, 0);
    // vodlint: parallel-region
    parallel_for(span, [&](std::size_t begin, std::size_t end) {
      for (std::size_t pos = begin; pos < end; ++pos) {
        FlowId id;
        Transfer* transfer = transfers_.at_offset(pos, id);
        if (transfer == nullptr) continue;
        const double moved_mb =
            network_.flow_rate(id).value() * elapsed / 8.0;
        const double before = transfer->remaining.value();
        transfer->remaining = MegaBytes{std::max(0.0, before - moved_mb)};
        // Record the crossing once: remaining only ever decreases, so a
        // transfer enters the candidate list exactly one time.
        if (before > kDoneEpsilonMb &&
            transfer->remaining.value() <= kDoneEpsilonMb) {
          settle_crossed_[pos] = 1;
        }
      }
    });
    for (std::size_t pos = 0; pos < span; ++pos) {
      if (settle_crossed_[pos] == 0) continue;
      FlowId id;
      (void)transfers_.at_offset(pos, id);
      drained_.push_back(id);
    }
  }
  last_progress_ = now;
}

void TransferManager::advance_progress(SimTime now) {
  settle_bytes(now);
  if (network_.time() < now) network_.set_time(now);
}

void TransferManager::complete_finished(SimTime now) {
  // Only transfers in the drained candidate list can be done: a transfer
  // enters it when its settled remaining crosses the epsilon (or at birth,
  // for degenerate sizes), so the sweep costs O(drained), not O(active)
  // per completion.  Completion is judged on settled `remaining`, never on
  // mid-epoch rates, so the sweep finishes the same transfers the
  // per-mutation solve did.
  if (drained_.empty()) return;
  // One allocation epoch for the whole sweep: a burst of simultaneous
  // completions (and whatever transfers the callbacks start) re-solves the
  // fair shares once when the guard releases, not once per stop_flow; the
  // caller reschedules after this returns, reading the fresh rates.
  const FluidNetwork::BatchGuard epoch = network_.defer_reallocate();
  for (;;) {
    // Deterministic pick: lowest flow id among the finished candidates
    // (entries cancelled since they drained are dead and skipped).
    FlowId done;
    std::size_t done_at = 0;
    for (std::size_t i = 0; i < drained_.size(); ++i) {
      const FlowId id = drained_[i];
      const Transfer* transfer = transfers_.find(id);
      if (transfer == nullptr ||
          transfer->remaining.value() > kDoneEpsilonMb) {
        continue;
      }
      if (!done.valid() || id < done) {
        done = id;
        done_at = i;
      }
    }
    if (!done.valid()) {
      drained_.clear();
      break;
    }
    drained_.erase(drained_.begin() + static_cast<std::ptrdiff_t>(done_at));
    CompletionCallback callback =
        std::move(transfers_.at(done,
            "TransferManager: drained transfer vanished").on_complete);
    transfers_.erase(done);
    network_.stop_flow(done);
    // The callback may start/cancel transfers; state is consistent here.
    callback(now);
  }
}

void TransferManager::reschedule(SimTime now) {
  if (pending_.valid()) {
    sim_.queue().cancel(pending_);
    pending_ = sim::EventHandle{};
  }
  if (transfers_.empty()) return;

  // Earliest-completion scan as a chunked min-reduction: min is exact on
  // doubles, and the chunk-order merge reproduces the serial ordered walk
  // bit-for-bit.  Reads only (rates, remaining); nothing is written.
  // vodlint: parallel-region
  double next = parallel_min(
      transfers_.window_span(), std::numeric_limits<double>::infinity(),
      [&](std::size_t begin, std::size_t end, double init) {
        double m = init;
        for (std::size_t pos = begin; pos < end; ++pos) {
          FlowId id;
          const Transfer* transfer =
              std::as_const(transfers_).at_offset(pos, id);
          if (transfer == nullptr) continue;
          const double rate = network_.flow_rate(id).value();
          m = std::min(m,
                       now.seconds() + transfer->remaining.megabits() / rate);
        }
        return m;
      });
  // Wake at background-traffic changes too, so rates stay faithful.
  next = std::min(next, network_.next_traffic_change(now).seconds());

  if (next == std::numeric_limits<double>::infinity()) return;
  pending_ =
      sim_.schedule_at(SimTime{next}, [this](SimTime t) { refresh(t); });
}

void TransferManager::refresh(SimTime now) {
  pending_ = sim::EventHandle{};
  const BusyScope guard{busy_depth_};
  advance_progress(now);
  complete_finished(now);
  reschedule(now);
}

}  // namespace vod::net
