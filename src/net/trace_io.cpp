#include "net/trace_io.h"

#include <map>
#include <sstream>
#include <stdexcept>

#include "common/contract.h"
#include "common/csv.h"
#include "common/table.h"

namespace vod::net {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  fail_require("trace csv line " + std::to_string(line) + ": " + message);
}

std::vector<std::string> split_csv_line(const std::string& line) {
  // The format we emit never quotes fields (link names come from the
  // topology and contain no commas), so a plain split suffices; quoted
  // fields are rejected loudly rather than mis-parsed.
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    out.push_back(line.substr(
        start, comma == std::string::npos ? comma : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

TraceTraffic load_trace_csv(const std::string& csv_text,
                            const Topology& topology) {
  // Index link names once.
  std::map<std::string, LinkId> by_name;
  for (const LinkInfo& info : topology.links()) {
    by_name.emplace(info.name, info.id);
  }

  TraceTraffic trace;
  std::istringstream in{csv_text};
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_line(line);
    if (!saw_header) {
      if (fields != std::vector<std::string>{"link", "time_s",
                                             "used_mbps"}) {
        fail(line_no, "expected header 'link,time_s,used_mbps'");
      }
      saw_header = true;
      continue;
    }
    if (fields.size() != 3) {
      fail(line_no, "expected 3 fields");
    }
    if (!fields[0].empty() && fields[0].front() == '"') {
      fail(line_no, "quoted link names are not supported");
    }
    const auto link = by_name.find(fields[0]);
    if (link == by_name.end()) {
      fail(line_no, "unknown link '" + fields[0] + "'");
    }
    double time_s = 0.0;
    double used = 0.0;
    try {
      std::size_t pos = 0;
      time_s = std::stod(fields[1], &pos);
      require(pos == fields[1].size(), "t");
      used = std::stod(fields[2], &pos);
      require(pos == fields[2].size(), "u");
    } catch (const std::exception&) {
      fail(line_no, "bad number");
    }
    try {
      trace.add_sample(link->second, SimTime{time_s}, Mbps{used});
    } catch (const std::invalid_argument& error) {
      fail(line_no, error.what());
    }
  }
  require(saw_header, "trace csv: empty input");
  return trace;
}

std::string save_trace_csv(const TrafficModel& traffic,
                           const Topology& topology,
                           const std::vector<SimTime>& sample_times) {
  CsvWriter csv{{"link", "time_s", "used_mbps"}};
  for (const LinkInfo& info : topology.links()) {
    for (const SimTime t : sample_times) {
      csv.add_row({info.name, TextTable::num(t.seconds(), 3),
                   TextTable::num(
                       traffic.background_load(info.id, t).value(), 6)});
    }
  }
  return csv.str();
}

}  // namespace vod::net
