#include "net/fluid.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/contract.h"
#include "common/parallel.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace vod::net {

FluidNetwork::FluidNetwork(const Topology& topology,
                           const TrafficModel& traffic)
    : topology_(topology), traffic_(traffic) {}

void FluidNetwork::set_change_hooks(std::function<void()> pre,
                                    std::function<void()> post) {
  pre_change_hook_ = std::move(pre);
  post_change_hook_ = std::move(post);
}

bool FluidNetwork::pre_mutation() {
  if (batch_depth_ == 0) {
    pre_change();
    return false;
  }
  if (!batch_dirty_) {
    // First mutation of the epoch: subscribers settle at the old rates
    // once, however many mutations follow before the epoch closes.
    batch_dirty_ = true;
    pre_change();
  }
  return true;
}

void FluidNetwork::commit_mutation() {
  // Empty-network fast path: with no flows there are no shares to solve,
  // so a clock move / link flap / final stop_flow skips the residual walk.
  if (flows_.empty()) {
    pending_local_.clear();
    post_change();
    return;
  }
  // All-local fast path: a pathless flow's max-min share is exactly
  // max(cap, kMinFlowRate) — independent of links, background traffic and
  // every other flow, and bit-identical to what reallocate() assigns it
  // (pathless flows are frozen at cap before any filling round).  With no
  // linked flow active, only the flows touched since the last solve need
  // their rate stamped.  Disabled under the reference self-check, which
  // wants every solve to run the full filler.
  if (linked_flow_count_ == 0 && !check_reference_) {
    for (const FlowId id : pending_local_) {
      Flow* flow = flows_.find(id);  // stopped mid-epoch -> skip
      if (flow != nullptr) flow->rate = std::max(flow->cap, kMinFlowRate);
    }
    pending_local_.clear();
    post_change();
    return;
  }
  reallocate();
  pending_local_.clear();
  post_change();
}

void FluidNetwork::end_batch() {
  require(batch_depth_ > 0, "FluidNetwork: unbalanced BatchGuard release");
  if (--batch_depth_ > 0) return;
  if (!batch_dirty_) return;
  batch_dirty_ = false;
  commit_mutation();
}

void FluidNetwork::set_time(SimTime t) {
  require(!(t < now_), "FluidNetwork::set_time: time went backward");
  if (t == now_) return;
  const bool deferred = pre_mutation();
  now_ = t;
  ++bg_gen_;  // the background cache is keyed on (link, now)
  if (!deferred) commit_mutation();
}

void FluidNetwork::ensure_index_size() {
  if (link_flows_.size() < topology_.link_count()) {
    link_flows_.resize(topology_.link_count());
  }
}

void FluidNetwork::index_insert(FlowId id, std::uint32_t slot,
                                const Flow& flow) {
  ensure_index_size();
  for (const LinkId link : flow.links) {
    // Flow ids are handed out monotonically, so appending keeps each
    // per-link list sorted ascending by id.
    link_flows_[link.value()].push_back(IndexEntry{id, slot});
  }
}

void FluidNetwork::index_remove(FlowId id, const Flow& flow) {
  for (const LinkId link : flow.links) {
    auto& list = link_flows_[link.value()];
    const auto it = std::lower_bound(
        list.begin(), list.end(), id,
        [](const IndexEntry& e, FlowId needle) { return e.id < needle; });
    ensure(it != list.end() && it->id == id,
        "FluidNetwork: incidence index out of sync");
    list.erase(it);
  }
}

FlowId FluidNetwork::start_flow(std::vector<LinkId> path, Mbps rate_cap,
                                std::uint32_t weight) {
  require(!(rate_cap.value() <= 0.0),
      "FluidNetwork::start_flow: cap must be positive");
  require(weight >= 1, "FluidNetwork::start_flow: weight must be >= 1");
  for (const LinkId link : path) {
    require(topology_.has_link(link),
        "FluidNetwork::start_flow: unknown link in path");
  }
  const bool deferred = pre_mutation();
  const FlowId id{next_flow_++};
  Flow& flow = flows_.insert(id, Flow{std::move(path), {}, rate_cap,
                                      Mbps{0.0}, weight});
  flow.links = flow.path;
  std::sort(flow.links.begin(), flow.links.end());
  flow.links.erase(std::unique(flow.links.begin(), flow.links.end()),
                   flow.links.end());
  index_insert(id, flows_.slot_of(id), flow);
  if (flow.links.empty()) {
    pending_local_.push_back(id);
  } else {
    ++linked_flow_count_;
  }
  if (!deferred) commit_mutation();
  return id;
}

void FluidNetwork::stop_flow(FlowId flow) {
  const Flow* entry = flows_.find(flow);
  require_found(entry != nullptr, "FluidNetwork::stop_flow: unknown flow");
  const bool deferred = pre_mutation();
  index_remove(flow, *entry);
  if (!entry->links.empty()) --linked_flow_count_;
  flows_.erase(flow);
  if (!deferred) commit_mutation();
}

void FluidNetwork::set_flow_cap(FlowId flow, Mbps rate_cap) {
  require(!(rate_cap.value() <= 0.0),
      "FluidNetwork::set_flow_cap: cap must be positive");
  Flow* entry = flows_.find(flow);
  require_found(entry != nullptr,
      "FluidNetwork::set_flow_cap: unknown flow");
  if (entry->cap == rate_cap) return;  // no state change
  const bool deferred = pre_mutation();
  entry->cap = rate_cap;
  if (entry->links.empty()) pending_local_.push_back(flow);
  if (!deferred) commit_mutation();
}

Mbps FluidNetwork::flow_rate(FlowId flow) const {
  const Flow* entry = flows_.find(flow);
  require_found(entry != nullptr, "FluidNetwork::flow_rate: unknown flow");
  return entry->rate;
}

std::uint32_t FluidNetwork::flow_weight(FlowId flow) const {
  const Flow* entry = flows_.find(flow);
  require_found(entry != nullptr, "FluidNetwork::flow_weight: unknown flow");
  return entry->weight;
}

const std::vector<LinkId>& FluidNetwork::flow_path(FlowId flow) const {
  const Flow* entry = flows_.find(flow);
  require_found(entry != nullptr, "FluidNetwork::flow_path: unknown flow");
  return entry->path;
}

void FluidNetwork::set_link_up(LinkId link, bool up) {
  require_found(topology_.has_link(link),
      "FluidNetwork::set_link_up: unknown link");
  if (link_down_.size() <= link.value()) {
    link_down_.resize(topology_.link_count(), false);
  }
  if (link_down_[link.value()] == !up) return;  // no state change
  const bool deferred = pre_mutation();
  link_down_[link.value()] = !up;
  if (!deferred) commit_mutation();
}

bool FluidNetwork::link_up(LinkId link) const {
  require_found(topology_.has_link(link),
      "FluidNetwork::link_up: unknown link");
  return link.value() >= link_down_.size() || !link_down_[link.value()];
}

std::vector<LinkId> FluidNetwork::down_links() const {
  std::vector<LinkId> down;
  for (std::size_t i = 0; i < link_down_.size(); ++i) {
    if (link_down_[i]) {
      down.push_back(LinkId{static_cast<LinkId::underlying_type>(i)});
    }
  }
  return down;
}

Mbps FluidNetwork::background(LinkId link) const {
  require_found(topology_.has_link(link),
      "FluidNetwork::background: unknown link");
  if (!link_up(link)) return Mbps{0.0};
  const std::size_t l = link.value();
  if (bg_cache_.size() <= l) {
    bg_cache_.resize(topology_.link_count());
    bg_cache_gen_.resize(topology_.link_count(), 0);
  }
  if (bg_cache_gen_[l] == bg_gen_) return bg_cache_[l];
  // Background never exceeds the link's capacity: the trace may carry the
  // paper's raw counters, but physics caps usage at the line rate.
  ++traffic_query_count_;
  const Mbps raw = traffic_.background_load(link, now_);
  const Mbps clamped = std::min(raw, topology_.link(link).capacity);
  bg_cache_[l] = clamped;
  bg_cache_gen_[l] = bg_gen_;
  return clamped;
}

Mbps FluidNetwork::used_bandwidth(LinkId link) const {
  Mbps used = background(link);
  // Sum in ascending flow-id order — the exact reduction order the naive
  // all-flows scan used, so the result stays bit-identical to it.
  if (link.value() < link_flows_.size()) {
    for (const IndexEntry& entry : link_flows_[link.value()]) {
      used += flows_.slot_value(entry.slot).rate;
    }
  }
  return std::min(used, topology_.link(link).capacity);
}

double FluidNetwork::utilization(LinkId link) const {
  const double u =
      used_bandwidth(link) / topology_.link(link).capacity;
  return std::clamp(u, 0.0, 1.0);
}

void FluidNetwork::reallocate() {
  // Progressive filling, driven by the incidence index: grow every
  // unfrozen flow's rate by delta x weight until a flow hits its cap or a
  // link exhausts its residual capacity; freeze and repeat.  Produces the
  // weighted max–min fair allocation subject to rate caps — bit-identical
  // to reallocate_reference(), which rediscovers per-link weight sums by
  // scanning all flows each round where this maintains them as integer
  // counters and resolves freeze sets through the per-link flow lists.
  ++reallocation_count_;
  VOD_PROFILE_SCOPE("fluid.reallocate");
  ensure_index_size();
  const std::size_t link_count = topology_.link_count();

  std::vector<double>& residual = scratch_residual_;
  residual.resize(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    const LinkId link{static_cast<LinkId::underlying_type>(l)};
    residual[l] =
        link_up(link)
            ? std::max(0.0, (topology_.link(link).capacity -
                             background(link)).value())
            : 0.0;
  }

  // Per-link sums of unfrozen-flow weights: every indexed flow starts
  // unfrozen (local/empty-path flows appear in no list).  Integer sums are
  // exact, and with all-ones weights they equal the plain unfrozen counts,
  // so the weighted arithmetic below reduces bit-for-bit to the old
  // unweighted filler.
  std::vector<std::uint64_t>& weight_on = scratch_weight_on_;
  weight_on.resize(link_count);
  // Each chunk owns a contiguous link range and writes only weight_on[l]
  // for its own links; flow weights are read-only here.
  // vodlint: parallel-region
  parallel_for(link_count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t l = begin; l < end; ++l) {
      std::uint64_t sum = 0;
      for (const IndexEntry& entry : link_flows_[l]) {
        sum += flows_.slot_value(entry.slot).weight;
      }
      weight_on[l] = sum;
    }
  });

  // Flow-parallel arrays in flows_ (ascending id) order, so fills and cap
  // minima visit flows exactly as the reference does.
  std::vector<FlowId>& ids = scratch_ids_;
  std::vector<Flow*>& flow_of = scratch_flows_;
  std::vector<double>& rate = scratch_rates_;
  std::vector<char>& frozen = scratch_frozen_;
  ids.clear();
  flow_of.clear();
  rate.clear();
  frozen.clear();
  flows_.for_each_ordered([&](FlowId id, Flow& flow) {
    ids.push_back(id);
    flow_of.push_back(&flow);
    rate.push_back(0.0);
    frozen.push_back(0);
  });
  const std::size_t flow_count = ids.size();
  std::size_t unfrozen_total = flow_count;

  // Flows with empty paths are purely local: they get their cap outright.
  for (std::size_t i = 0; i < flow_count; ++i) {
    if (flow_of[i]->links.empty()) {
      rate[i] = flow_of[i]->cap.value();
      frozen[i] = 1;
      --unfrozen_total;
    }
  }

  std::vector<std::size_t>& unfrozen = scratch_unfrozen_;
  unfrozen.clear();
  for (std::size_t i = 0; i < flow_count; ++i) {
    if (!frozen[i]) unfrozen.push_back(i);
  }

  const auto freeze = [&](std::size_t i) {
    frozen[i] = 1;
    --unfrozen_total;
    for (const LinkId link : flow_of[i]->links) {
      weight_on[link.value()] -= flow_of[i]->weight;
    }
  };
  // Index of flow `id` in the parallel arrays (ids is sorted ascending).
  const auto slot_of = [&](FlowId id) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    ensure(it != ids.end() && *it == id,
        "FluidNetwork::reallocate: index entry for unknown flow");
    return static_cast<std::size_t>(it - ids.begin());
  };

  constexpr double kEps = 1e-12;
  std::uint64_t rounds = 0;
  while (unfrozen_total > 0) {
    ++rounds;
    // Largest per-weight-unit increment no constraint can absorb less of:
    // each unfrozen flow grows by delta x its weight, so a link drains at
    // delta x (sum of unfrozen weights crossing it).  min over doubles is
    // exact, so the chunked reductions below are bit-identical to the
    // serial fold at every worker count.
    // vodlint: parallel-region
    double delta = parallel_min(
        link_count, std::numeric_limits<double>::infinity(),
        [&](std::size_t begin, std::size_t end, double acc) {
          for (std::size_t l = begin; l < end; ++l) {
            const std::uint64_t w = weight_on[l];
            if (w > 0) {
              acc = std::min(acc, residual[l] / static_cast<double>(w));
            }
          }
          return acc;
        });
    // vodlint: parallel-region
    delta = parallel_min(
        unfrozen.size(), delta,
        [&](std::size_t begin, std::size_t end, double acc) {
          for (std::size_t k = begin; k < end; ++k) {
            const std::size_t i = unfrozen[k];
            acc = std::min(acc, (flow_of[i]->cap.value() - rate[i]) /
                                    static_cast<double>(flow_of[i]->weight));
          }
          return acc;
        });

    if (delta > 0.0) {
      // Chunk-owned element writes only: rate[i] per unfrozen flow,
      // residual[l] per link.
      // vodlint: parallel-region
      parallel_for(unfrozen.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::size_t i = unfrozen[k];
          rate[i] += delta * static_cast<double>(flow_of[i]->weight);
        }
      });
      // Links with no unfrozen flows keep their residual bit-for-bit
      // (subtracting delta * 0 and re-clamping is the identity on the
      // non-negative values stored here), so they are skipped.
      // vodlint: parallel-region
      parallel_for(link_count, [&](std::size_t begin, std::size_t end) {
        for (std::size_t l = begin; l < end; ++l) {
          const std::uint64_t w = weight_on[l];
          if (w > 0) {
            residual[l] -= delta * static_cast<double>(w);
            residual[l] = std::max(residual[l], 0.0);
          }
        }
      });
    }

    // Freeze flows at their cap, then everyone on exhausted links.  Rates
    // and residuals are fixed during this pass, so resolving the freeze
    // set link-by-link through the index matches the reference's
    // flow-by-flow path scan exactly.
    bool froze = false;
    for (const std::size_t i : unfrozen) {
      if (rate[i] >= flow_of[i]->cap.value() - kEps) {
        freeze(i);
        froze = true;
      }
    }
    for (std::size_t l = 0; l < link_count; ++l) {
      if (weight_on[l] == 0 || residual[l] > kEps) continue;
      for (const IndexEntry& entry : link_flows_[l]) {
        const std::size_t i = slot_of(entry.id);
        if (!frozen[i]) {
          freeze(i);
          froze = true;
        }
      }
    }
    if (!froze) break;  // nothing limits the remaining flows (shouldn't occur)

    unfrozen.erase(
        std::remove_if(unfrozen.begin(), unfrozen.end(),
                       [&](std::size_t i) { return frozen[i] != 0; }),
        unfrozen.end());
  }

  // Final stamp: each chunk writes only its own flows' rates; link_up reads
  // the immutable-during-solve link_down_ vector.
  // vodlint: parallel-region
  parallel_for(flow_count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Flows crossing a down link are truly stuck (rate 0); everyone else
      // gets at least the trickle floor.
      bool severed = false;
      for (const LinkId link : flow_of[i]->links) {
        if (!link_up(link)) severed = true;
      }
      flow_of[i]->rate = severed ? Mbps{0.0}
                                 : std::max(Mbps{rate[i]}, kMinFlowRate);
    }
  });

  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    tr->instant(obs::Subsystem::kFluid, "fluid.realloc",
                {{"rounds", obs::num(rounds)},
                 {"flows", obs::num(static_cast<std::uint64_t>(flow_count))}});
    tr->counter(obs::Subsystem::kFluid, "fluid.active_flows",
                static_cast<double>(flow_count));
  }

  if (check_reference_) {
    const std::vector<std::pair<FlowId, Mbps>> reference =
        reallocate_reference();
    ensure(reference.size() == flow_count,
        "FluidNetwork: reference allocation lost a flow");
    for (std::size_t i = 0; i < flow_count; ++i) {
      ensure(reference[i].first == ids[i] &&
                 reference[i].second.value() == flow_of[i]->rate.value(),
          "FluidNetwork: indexed allocation diverged from "
          "reallocate_reference()");
    }
  }
}

std::vector<std::pair<FlowId, Mbps>> FluidNetwork::reallocate_reference()
    const {
  // The original from-scratch progressive filler, preserved as the oracle
  // the indexed allocator is checked against: per-link unfrozen weight
  // sums are recomputed by scanning every flow's path each round (with
  // all-ones weights they are the old per-link unfrozen counts).
  std::vector<double> residual(topology_.link_count());
  for (std::size_t l = 0; l < residual.size(); ++l) {
    const LinkId link{static_cast<LinkId::underlying_type>(l)};
    residual[l] =
        link_up(link)
            ? std::max(0.0, (topology_.link(link).capacity -
                             background(link)).value())
            : 0.0;
  }

  struct Active {
    const Flow* flow;
    FlowId id;
    double rate = 0.0;
    bool frozen = false;
  };
  std::vector<Active> active;
  active.reserve(flows_.size());
  // The ordered walk ascends by id, so `active` is deterministically
  // ordered too.
  flows_.for_each_ordered([&](FlowId id, const Flow& flow) {
    active.push_back(Active{&flow, id});
  });

  // Flows with empty paths are purely local: they get their cap outright.
  for (Active& a : active) {
    if (a.flow->path.empty()) {
      a.rate = a.flow->cap.value();
      a.frozen = true;
    }
  }

  const auto weight_on = [&](std::size_t l) {
    std::uint64_t sum = 0;
    for (const Active& a : active) {
      if (a.frozen) continue;
      for (const LinkId link : a.flow->path) {
        if (link.value() == l) {
          sum += a.flow->weight;
          break;
        }
      }
    }
    return sum;
  };

  for (;;) {
    bool any_unfrozen = false;
    for (const Active& a : active) any_unfrozen |= !a.frozen;
    if (!any_unfrozen) break;

    // Largest per-weight-unit increment no constraint can absorb less of.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < residual.size(); ++l) {
      const std::uint64_t w = weight_on(l);
      if (w > 0) {
        delta = std::min(delta, residual[l] / static_cast<double>(w));
      }
    }
    for (const Active& a : active) {
      if (!a.frozen) {
        delta = std::min(delta, (a.flow->cap.value() - a.rate) /
                                    static_cast<double>(a.flow->weight));
      }
    }

    if (delta > 0.0) {
      for (Active& a : active) {
        if (!a.frozen) a.rate += delta * static_cast<double>(a.flow->weight);
      }
      for (std::size_t l = 0; l < residual.size(); ++l) {
        const std::uint64_t w = weight_on(l);
        residual[l] -= delta * static_cast<double>(w);
        residual[l] = std::max(residual[l], 0.0);
      }
    }

    // Freeze flows at their cap or on exhausted links.
    constexpr double kEps = 1e-12;
    bool froze = false;
    for (Active& a : active) {
      if (a.frozen) continue;
      if (a.rate >= a.flow->cap.value() - kEps) {
        a.frozen = true;
        froze = true;
        continue;
      }
      for (const LinkId link : a.flow->path) {
        if (residual[link.value()] <= kEps) {
          a.frozen = true;
          froze = true;
          break;
        }
      }
    }
    if (!froze) break;  // nothing limits the remaining flows (shouldn't occur)
  }

  std::vector<std::pair<FlowId, Mbps>> out;
  out.reserve(active.size());
  for (const Active& a : active) {
    // Flows crossing a down link are truly stuck (rate 0); everyone else
    // gets at least the trickle floor.
    bool severed = false;
    for (const LinkId link : a.flow->path) {
      if (!link_up(link)) severed = true;
    }
    out.emplace_back(a.id, severed ? Mbps{0.0}
                                   : std::max(Mbps{a.rate}, kMinFlowRate));
  }
  return out;
}

}  // namespace vod::net
