#include "net/fluid.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/contract.h"

namespace vod::net {

FluidNetwork::FluidNetwork(const Topology& topology,
                           const TrafficModel& traffic)
    : topology_(topology), traffic_(traffic) {}

void FluidNetwork::set_change_hooks(std::function<void()> pre,
                                    std::function<void()> post) {
  pre_change_hook_ = std::move(pre);
  post_change_hook_ = std::move(post);
}

void FluidNetwork::set_time(SimTime t) {
  require(!(t < now_), "FluidNetwork::set_time: time went backward");
  if (t == now_) return;
  pre_change();
  now_ = t;
  reallocate();
  post_change();
}

FlowId FluidNetwork::start_flow(std::vector<LinkId> path, Mbps rate_cap) {
  require(!(rate_cap.value() <= 0.0),
      "FluidNetwork::start_flow: cap must be positive");
  for (const LinkId link : path) {
    require(topology_.has_link(link),
        "FluidNetwork::start_flow: unknown link in path");
  }
  pre_change();
  const FlowId id{next_flow_++};
  flows_.emplace(id, Flow{std::move(path), rate_cap, Mbps{0.0}});
  reallocate();
  post_change();
  return id;
}

void FluidNetwork::stop_flow(FlowId flow) {
  require_found(flows_.contains(flow), "FluidNetwork::stop_flow: unknown flow");
  pre_change();
  flows_.erase(flow);
  reallocate();
  post_change();
}

Mbps FluidNetwork::flow_rate(FlowId flow) const {
  const auto it = flows_.find(flow);
  require_found(it != flows_.end(), "FluidNetwork::flow_rate: unknown flow");
  return it->second.rate;
}

const std::vector<LinkId>& FluidNetwork::flow_path(FlowId flow) const {
  const auto it = flows_.find(flow);
  require_found(it != flows_.end(), "FluidNetwork::flow_path: unknown flow");
  return it->second.path;
}

void FluidNetwork::set_link_up(LinkId link, bool up) {
  require_found(topology_.has_link(link),
      "FluidNetwork::set_link_up: unknown link");
  if (link_down_.size() <= link.value()) {
    link_down_.resize(topology_.link_count(), false);
  }
  if (link_down_[link.value()] == !up) return;  // no state change
  pre_change();
  link_down_[link.value()] = !up;
  reallocate();
  post_change();
}

bool FluidNetwork::link_up(LinkId link) const {
  require_found(topology_.has_link(link),
      "FluidNetwork::link_up: unknown link");
  return link.value() >= link_down_.size() || !link_down_[link.value()];
}

std::vector<LinkId> FluidNetwork::down_links() const {
  std::vector<LinkId> down;
  for (std::size_t i = 0; i < link_down_.size(); ++i) {
    if (link_down_[i]) {
      down.push_back(LinkId{static_cast<LinkId::underlying_type>(i)});
    }
  }
  return down;
}

Mbps FluidNetwork::background(LinkId link) const {
  require_found(topology_.has_link(link),
      "FluidNetwork::background: unknown link");
  if (!link_up(link)) return Mbps{0.0};
  // Background never exceeds the link's capacity: the trace may carry the
  // paper's raw counters, but physics caps usage at the line rate.
  const Mbps raw = traffic_.background_load(link, now_);
  return std::min(raw, topology_.link(link).capacity);
}

Mbps FluidNetwork::used_bandwidth(LinkId link) const {
  Mbps used = background(link);
  for (const auto& [id, flow] : flows_) {
    for (const LinkId on_path : flow.path) {
      if (on_path == link) {
        used += flow.rate;
        break;
      }
    }
  }
  return std::min(used, topology_.link(link).capacity);
}

double FluidNetwork::utilization(LinkId link) const {
  const double u =
      used_bandwidth(link) / topology_.link(link).capacity;
  return std::clamp(u, 0.0, 1.0);
}

void FluidNetwork::reallocate() {
  // Progressive filling: grow every unfrozen flow's rate uniformly until a
  // flow hits its cap or a link exhausts its residual capacity; freeze and
  // repeat.  Produces the max–min fair allocation subject to rate caps.
  std::vector<double> residual(topology_.link_count());
  for (std::size_t l = 0; l < residual.size(); ++l) {
    const LinkId link{static_cast<LinkId::underlying_type>(l)};
    residual[l] =
        link_up(link)
            ? std::max(0.0, (topology_.link(link).capacity -
                             background(link)).value())
            : 0.0;
  }

  struct Active {
    Flow* flow;
    double rate = 0.0;
    bool frozen = false;
  };
  std::vector<Active> active;
  active.reserve(flows_.size());
  // flows_ is ordered by id, so `active` is deterministically ordered too.
  for (auto& [id, flow] : flows_) active.push_back(Active{&flow});

  // Flows with empty paths are purely local: they get their cap outright.
  for (Active& a : active) {
    if (a.flow->path.empty()) {
      a.rate = a.flow->cap.value();
      a.frozen = true;
    }
  }

  auto unfrozen_on = [&](std::size_t l) {
    int count = 0;
    for (const Active& a : active) {
      if (a.frozen) continue;
      for (const LinkId link : a.flow->path) {
        if (link.value() == l) {
          ++count;
          break;
        }
      }
    }
    return count;
  };

  for (;;) {
    bool any_unfrozen = false;
    for (const Active& a : active) any_unfrozen |= !a.frozen;
    if (!any_unfrozen) break;

    // Largest uniform increment no constraint can absorb less of.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < residual.size(); ++l) {
      const int n = unfrozen_on(l);
      if (n > 0) delta = std::min(delta, residual[l] / n);
    }
    for (const Active& a : active) {
      if (!a.frozen) delta = std::min(delta, a.flow->cap.value() - a.rate);
    }

    if (delta > 0.0) {
      for (Active& a : active) {
        if (!a.frozen) a.rate += delta;
      }
      for (std::size_t l = 0; l < residual.size(); ++l) {
        const int n = unfrozen_on(l);
        residual[l] -= delta * n;
        residual[l] = std::max(residual[l], 0.0);
      }
    }

    // Freeze flows at their cap or on exhausted links.
    constexpr double kEps = 1e-12;
    bool froze = false;
    for (Active& a : active) {
      if (a.frozen) continue;
      if (a.rate >= a.flow->cap.value() - kEps) {
        a.frozen = true;
        froze = true;
        continue;
      }
      for (const LinkId link : a.flow->path) {
        if (residual[link.value()] <= kEps) {
          a.frozen = true;
          froze = true;
          break;
        }
      }
    }
    if (!froze) break;  // nothing limits the remaining flows (shouldn't occur)
  }

  for (Active& a : active) {
    // Flows crossing a down link are truly stuck (rate 0); everyone else
    // gets at least the trickle floor.
    bool severed = false;
    for (const LinkId link : a.flow->path) {
      if (!link_up(link)) severed = true;
    }
    a.flow->rate = severed ? Mbps{0.0}
                           : std::max(Mbps{a.rate}, kMinFlowRate);
  }
}

}  // namespace vod::net
