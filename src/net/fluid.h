// Fluid-flow bandwidth model.
//
// VoD transfers are modelled as fluid flows: each active flow follows a
// fixed link path and receives a max–min fair share of whatever capacity the
// background (non-VoD) traffic leaves free on every link it crosses, further
// limited by its own rate cap (the title's encoding bitrate or a server's
// NIC).  This is the standard abstraction for bandwidth-arithmetic studies —
// and the paper's evaluation is exactly bandwidth arithmetic.
//
// Class-weighted sharing: every flow carries an integer weight (default 1).
// The progressive filling grows each unfrozen flow by delta x weight per
// round, so on a contended link a weight-4 premium flow receives 4x the
// share of a weight-1 background flow.  Borrowing between classes is
// emergent: a heavy flow frozen at its rate cap stops consuming increments,
// and the remaining (lighter) flows keep filling into the capacity it left
// unused — unused premium share spills to lower classes within the same
// allocation epoch, and is reclaimed the instant the premium cap rises.
// Weights are integers so the weighted arithmetic is exact: with every
// weight at 1 each expression reduces bit-for-bit to the unweighted filler
// the paper benches were frozen against.
//
// Scaling note: the allocator keeps a per-link *flow incidence index*
// (link -> flows crossing it, ascending by id), so one progressive-filling
// pass costs O(rounds x (links + active flows) + total incidence) instead of
// the naive O(rounds x links x flows x path), and per-link queries
// (used_bandwidth, utilization) walk only the flows on that link.  The
// naive filler survives as reallocate_reference() — a bit-identical oracle
// for tests, benches and the optional self-check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/slot_map.h"
#include "common/sim_time.h"
#include "common/units.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace vod::net {

/// Minimum rate any active flow is granted even on a saturated path, so
/// transfers degrade to "very slow" rather than "stuck forever" (a real TCP
/// flow on a congested link still trickles).
inline constexpr Mbps kMinFlowRate{1e-3};

/// The live bandwidth state of the network: background load from a
/// TrafficModel plus our own flows, shared max–min fairly.
///
/// Flow rates are piecewise constant: they change only when the network
/// mutates (time moves, flows start/stop, links fail/recover).  Components
/// that integrate rates over time (TransferManager) register change hooks
/// so they can settle progress at the old rates before a mutation and
/// re-plan after it.
class FluidNetwork {
 public:
  /// Both references must outlive the network.
  FluidNetwork(const Topology& topology, const TrafficModel& traffic);

  // The change hooks and incidence index tie the network to one identity.
  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// `pre` runs before any rate-affecting mutation (old rates still in
  /// force); `post` runs after it (new rates in force).  One subscriber —
  /// the transfer manager — is sufficient for this library.
  void set_change_hooks(std::function<void()> pre, std::function<void()> post);

  /// Moves the background traffic clock; flow shares are re-solved.
  void set_time(SimTime t);
  [[nodiscard]] SimTime time() const { return now_; }

  /// Marks a link up or down (fiber cut, router crash).  Flows crossing a
  /// down link drop to zero rate until it recovers; background traffic on
  /// it reads as zero.
  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const;

  /// All currently-down links, ascending by id (fault tooling/report).
  [[nodiscard]] std::vector<LinkId> down_links() const;

  /// Starts a flow across `path` (links in order; may be empty for a purely
  /// local transfer, which then runs at `rate_cap`).  Every link must exist.
  /// `rate_cap` must be positive.  `weight` (>= 1) is the flow's share of
  /// each filling increment — the class-weighted max-min knob; 1 is the
  /// classless paper behaviour.
  FlowId start_flow(std::vector<LinkId> path, Mbps rate_cap,
                    std::uint32_t weight = 1);

  /// The share weight a flow was started with.
  [[nodiscard]] std::uint32_t flow_weight(FlowId flow) const;

  /// Removes a flow; throws std::out_of_range if unknown.
  void stop_flow(FlowId flow);

  /// Changes a flow's rate cap (encoding-bitrate switch, client line
  /// upgrade); shares are re-solved.  `rate_cap` must be positive; throws
  /// std::out_of_range if the flow is unknown.
  void set_flow_cap(FlowId flow, Mbps rate_cap);

  /// Current fair-share rate of a flow (at least kMinFlowRate unless its
  /// path crosses a down link).  Inside an open allocation epoch (see
  /// BatchGuard) rates are stale: they reflect the last reallocation, and
  /// flows started within the epoch read 0 until it closes.
  [[nodiscard]] Mbps flow_rate(FlowId flow) const;

  [[nodiscard]] const std::vector<LinkId>& flow_path(FlowId flow) const;

  /// Background-only load on a link at the current time.  Cached per
  /// (link, instant): the TrafficModel is consulted at most once per link
  /// between clock movements, however many times the residual builder, the
  /// SNMP sweep and ad-hoc queries ask.
  [[nodiscard]] Mbps background(LinkId link) const;

  /// Background plus all flow shares crossing the link.  An incidence-index
  /// walk: O(flows on this link), not O(all flows x path length).
  [[nodiscard]] Mbps used_bandwidth(LinkId link) const;

  /// used / capacity, clamped to [0, 1].
  [[nodiscard]] double utilization(LinkId link) const;

  [[nodiscard]] std::size_t active_flow_count() const {
    return flows_.size();
  }

  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// Next instant after `t` when background traffic shifts (see
  /// TrafficModel::next_change_after).
  [[nodiscard]] SimTime next_traffic_change(SimTime t) const {
    return traffic_.next_change_after(t);
  }

  // ---- coalesced allocation epochs ----

  /// RAII handle for one allocation epoch: while any guard is alive,
  /// mutations (start/stop/cap-edit/link-flap/clock moves) update state but
  /// defer the reallocation; the single pre-change hook fires before the
  /// epoch's first mutation, and one reallocation plus the post-change hook
  /// run when the last guard releases.  Callers tearing down or starting
  /// many flows at one simulated instant (failover storms, completion
  /// sweeps) pay for one progressive filling instead of one per mutation.
  ///
  /// Epochs are meant to stay within one simulated instant: mid-epoch rate
  /// reads are stale, so nothing that integrates rates over time may span
  /// an open epoch across a clock movement with active transfers.
  class [[nodiscard]] BatchGuard {
   public:
    BatchGuard() = default;
    BatchGuard(BatchGuard&& other) noexcept : net_(other.net_) {
      other.net_ = nullptr;
    }
    BatchGuard& operator=(BatchGuard&& other) noexcept {
      if (this != &other) {
        release();
        net_ = other.net_;
        other.net_ = nullptr;
      }
      return *this;
    }
    BatchGuard(const BatchGuard&) = delete;
    BatchGuard& operator=(const BatchGuard&) = delete;
    ~BatchGuard() { release(); }

    /// Closes the epoch early (idempotent); the destructor calls this.
    void release() {
      if (net_ != nullptr) {
        FluidNetwork* net = net_;
        net_ = nullptr;
        net->end_batch();
      }
    }

   private:
    friend class FluidNetwork;
    explicit BatchGuard(FluidNetwork* net) : net_(net) {}
    FluidNetwork* net_ = nullptr;
  };

  /// Opens (or nests into) an allocation epoch.  The guard must not outlive
  /// the network.
  BatchGuard defer_reallocate() {
    ++batch_depth_;
    return BatchGuard{this};
  }

  // ---- reference implementation & introspection ----

  /// The original naive progressive filler, kept verbatim as an oracle: a
  /// from-scratch O(rounds x links x flows x path) solve of the current
  /// state, returning (flow, rate) ascending by id.  The indexed allocator
  /// is bit-identical to it by construction; the differential tests and
  /// bench_fluid_alloc hold it to that.
  [[nodiscard]] std::vector<std::pair<FlowId, Mbps>> reallocate_reference()
      const;

  /// Debug flag: when on, every reallocation re-solves with
  /// reallocate_reference() and requires bitwise-equal rates (throws
  /// std::logic_error on divergence).  Off by default — it restores the
  /// naive cost.
  void set_check_against_reference(bool on) { check_reference_ = on; }

  /// Progressive fillings performed so far (epoch coalescing, the
  /// empty-network fast path and the all-local fast path all show up as
  /// this not advancing).
  [[nodiscard]] std::size_t reallocation_count() const {
    return reallocation_count_;
  }

  /// TrafficModel::background_load calls actually issued (cache misses);
  /// with the per-instant cache this is at most one per link per clock
  /// movement.
  [[nodiscard]] std::size_t traffic_query_count() const {
    return traffic_query_count_;
  }

 private:
  struct Flow {
    std::vector<LinkId> path;   // as given by the caller (may repeat links)
    std::vector<LinkId> links;  // sorted unique links — the index keys
    Mbps cap;
    Mbps rate;
    /// Share weight of the progressive filling (>= 1).  Integer so per-link
    /// weight sums are exact and the all-ones case stays bit-identical to
    /// the unweighted filler.
    std::uint32_t weight = 1;
  };

  /// One incidence-index entry: the slot index is stable for the flow's
  /// lifetime (SlotMap slots never move), unlike a pointer into a growing
  /// dense vector would be.
  struct IndexEntry {
    FlowId id;
    std::uint32_t slot;
  };

  void reallocate();
  /// Fires the pre-change hook (once per epoch when batched); returns true
  /// when the mutation is deferred into an open epoch.
  bool pre_mutation();
  /// Re-solves shares (skipped when no flows are active) and fires the
  /// post-change hook.
  void commit_mutation();
  void end_batch();
  void ensure_index_size();
  void index_insert(FlowId id, std::uint32_t slot, const Flow& flow);
  void index_remove(FlowId id, const Flow& flow);

  void pre_change() const {
    if (pre_change_hook_) pre_change_hook_();
  }
  void post_change() const {
    if (post_change_hook_) post_change_hook_();
  }

  std::function<void()> pre_change_hook_;
  std::function<void()> post_change_hook_;
  const Topology& topology_;
  const TrafficModel& traffic_;
  SimTime now_{0.0};
  // Dense slot-map store; every iteration (fair-share filling, per-link
  // sums) uses its ascending-id ordered walk, so float reductions stay
  // bit-identical across runs and to the old std::map-based code.
  SlotMap<FlowId, Flow> flows_;
  /// link id -> flows crossing it, ascending by flow id (ids are handed out
  /// monotonically, so insertion is an append and the per-link sums reduce
  /// in exactly the order the naive full scan used).
  std::vector<std::vector<IndexEntry>> link_flows_;
  std::vector<bool> link_down_;  // indexed by link id; default all up
  FlowId::underlying_type next_flow_ = 0;
  /// Flows whose `links` list is non-empty.  When zero, every active flow
  /// is purely local and its max-min share is exactly its (floored) cap, so
  /// commit_mutation stamps the flows touched since the last solve instead
  /// of running a progressive filling — the all-local fast path that keeps
  /// large single-site session populations O(1) per mutation.
  std::size_t linked_flow_count_ = 0;
  /// Pathless flows started or cap-edited since the last full solve — the
  /// set the all-local fast path must stamp (stopped ones are skipped).
  std::vector<FlowId> pending_local_;

  int batch_depth_ = 0;
  bool batch_dirty_ = false;
  bool check_reference_ = false;
  std::size_t reallocation_count_ = 0;

  /// Per-instant background cache: value is min(raw trace load, capacity)
  /// for the *up* link — independent of link state, so flaps need no
  /// invalidation; clock movements bump the generation instead of clearing.
  mutable std::vector<Mbps> bg_cache_;
  mutable std::vector<std::uint64_t> bg_cache_gen_;
  mutable std::uint64_t bg_gen_ = 1;
  mutable std::size_t traffic_query_count_ = 0;

  // Scratch buffers reused across reallocations (sized to flows/links) so
  // steady-state epochs allocate nothing.
  std::vector<double> scratch_residual_;
  /// Per-link sum of unfrozen-flow weights (exact: integer arithmetic).
  /// All-ones weights make this the old per-link unfrozen *count*, so the
  /// weighted filling reproduces the unweighted one bit-for-bit.
  std::vector<std::uint64_t> scratch_weight_on_;
  std::vector<FlowId> scratch_ids_;
  std::vector<Flow*> scratch_flows_;
  std::vector<double> scratch_rates_;
  std::vector<char> scratch_frozen_;
  std::vector<std::size_t> scratch_unfrozen_;
};

}  // namespace vod::net
