// Fluid-flow bandwidth model.
//
// VoD transfers are modelled as fluid flows: each active flow follows a
// fixed link path and receives a max–min fair share of whatever capacity the
// background (non-VoD) traffic leaves free on every link it crosses, further
// limited by its own rate cap (the title's encoding bitrate or a server's
// NIC).  This is the standard abstraction for bandwidth-arithmetic studies —
// and the paper's evaluation is exactly bandwidth arithmetic.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/units.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace vod::net {

/// Minimum rate any active flow is granted even on a saturated path, so
/// transfers degrade to "very slow" rather than "stuck forever" (a real TCP
/// flow on a congested link still trickles).
inline constexpr Mbps kMinFlowRate{1e-3};

/// The live bandwidth state of the network: background load from a
/// TrafficModel plus our own flows, shared max–min fairly.
///
/// Flow rates are piecewise constant: they change only when the network
/// mutates (time moves, flows start/stop, links fail/recover).  Components
/// that integrate rates over time (TransferManager) register change hooks
/// so they can settle progress at the old rates before a mutation and
/// re-plan after it.
class FluidNetwork {
 public:
  /// Both references must outlive the network.
  FluidNetwork(const Topology& topology, const TrafficModel& traffic);

  /// `pre` runs before any rate-affecting mutation (old rates still in
  /// force); `post` runs after it (new rates in force).  One subscriber —
  /// the transfer manager — is sufficient for this library.
  void set_change_hooks(std::function<void()> pre, std::function<void()> post);

  /// Moves the background traffic clock; flow shares are re-solved.
  void set_time(SimTime t);
  [[nodiscard]] SimTime time() const { return now_; }

  /// Marks a link up or down (fiber cut, router crash).  Flows crossing a
  /// down link drop to zero rate until it recovers; background traffic on
  /// it reads as zero.
  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const;

  /// All currently-down links, ascending by id (fault tooling/report).
  [[nodiscard]] std::vector<LinkId> down_links() const;

  /// Starts a flow across `path` (links in order; may be empty for a purely
  /// local transfer, which then runs at `rate_cap`).  Every link must exist.
  /// `rate_cap` must be positive.
  FlowId start_flow(std::vector<LinkId> path, Mbps rate_cap);

  /// Removes a flow; throws std::out_of_range if unknown.
  void stop_flow(FlowId flow);

  /// Current fair-share rate of a flow (at least kMinFlowRate).
  [[nodiscard]] Mbps flow_rate(FlowId flow) const;

  [[nodiscard]] const std::vector<LinkId>& flow_path(FlowId flow) const;

  /// Background-only load on a link at the current time.
  [[nodiscard]] Mbps background(LinkId link) const;

  /// Background plus all flow shares crossing the link.
  [[nodiscard]] Mbps used_bandwidth(LinkId link) const;

  /// used / capacity, clamped to [0, 1].
  [[nodiscard]] double utilization(LinkId link) const;

  [[nodiscard]] std::size_t active_flow_count() const {
    return flows_.size();
  }

  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// Next instant after `t` when background traffic shifts (see
  /// TrafficModel::next_change_after).
  [[nodiscard]] SimTime next_traffic_change(SimTime t) const {
    return traffic_.next_change_after(t);
  }

 private:
  struct Flow {
    std::vector<LinkId> path;
    Mbps cap;
    Mbps rate;
  };

  void reallocate();
  void pre_change() const {
    if (pre_change_hook_) pre_change_hook_();
  }
  void post_change() const {
    if (post_change_hook_) post_change_hook_();
  }

  std::function<void()> pre_change_hook_;
  std::function<void()> post_change_hook_;
  const Topology& topology_;
  const TrafficModel& traffic_;
  SimTime now_{0.0};
  // Ordered by FlowId so every iteration (fair-share filling, per-link
  // sums) visits flows in a platform-independent order — float reductions
  // stay bit-identical across runs and standard libraries.
  std::map<FlowId, Flow> flows_;
  std::vector<bool> link_down_;  // indexed by link id; default all up
  FlowId::underlying_type next_flow_ = 0;
};

}  // namespace vod::net
