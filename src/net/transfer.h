// Timed data transfers over the fluid network.
//
// A transfer is a flow plus a byte count: the manager tracks remaining bytes
// as rates evolve (other transfers starting/stopping, background traffic
// shifting) and fires a completion callback at the simulated instant the
// last byte lands.  The streaming layer builds cluster fetches on top of
// this.
#pragma once

#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/slot_map.h"
#include "common/sim_time.h"
#include "common/units.h"
#include "net/fluid.h"
#include "sim/simulation.h"

namespace vod::net {

/// Drives transfers to completion inside a Simulation.  Progress is exact:
/// between refresh points rates are constant, so remaining bytes decrease
/// linearly and completion times are solved in closed form.
class TransferManager {
 public:
  using CompletionCallback = std::function<void(SimTime)>;

  /// Both references must outlive the manager.
  TransferManager(sim::Simulation& sim, FluidNetwork& network);
  ~TransferManager();

  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  /// Starts moving `size` across `path` (empty = local, runs at `rate_cap`).
  /// `on_complete` fires exactly once unless the transfer is cancelled.
  /// `weight` is the flow's share multiplier in the fluid network's
  /// weighted max-min fill (1 = the classless default).
  FlowId start_transfer(std::vector<LinkId> path, MegaBytes size,
                        Mbps rate_cap, CompletionCallback on_complete,
                        std::uint32_t weight = 1);

  /// Aborts an in-flight transfer (no callback); throws if unknown.
  void cancel(FlowId id);

  [[nodiscard]] bool active(FlowId id) const {
    return transfers_.contains(id);
  }
  [[nodiscard]] MegaBytes remaining(FlowId id) const;
  [[nodiscard]] Mbps current_rate(FlowId id) const;
  [[nodiscard]] std::size_t active_count() const {
    return transfers_.size();
  }

  /// The network transfers run over — exposed so callers pairing a cancel
  /// with a restart (failover) can wrap both in one allocation epoch via
  /// FluidNetwork::defer_reallocate().
  [[nodiscard]] FluidNetwork& network() { return network_; }

 private:
  struct Transfer {
    MegaBytes remaining;
    CompletionCallback on_complete;
  };

  /// Applies linear progress at current rates up to `now`, without touching
  /// the network clock.
  void settle_bytes(SimTime now);
  /// settle_bytes + advance the network clock.
  void advance_progress(SimTime now);
  /// Completes transfers that have drained; callbacks may start new ones.
  void complete_finished(SimTime now);
  /// Schedules the next wake-up (earliest completion or traffic change).
  void reschedule(SimTime now);
  void refresh(SimTime now);

  /// Network change hooks: when something *else* mutates the FluidNetwork
  /// (the SNMP module advancing time, a link failing), settle progress at
  /// the old rates first and re-plan wake-ups after.
  void on_network_pre_change();
  void on_network_post_change();

  /// RAII reentrancy guard: the manager's own network mutations must not
  /// re-trigger the hooks.
  class BusyScope {
   public:
    explicit BusyScope(int& depth) : depth_(depth) { ++depth_; }
    ~BusyScope() { --depth_; }
    BusyScope(const BusyScope&) = delete;
    BusyScope& operator=(const BusyScope&) = delete;

   private:
    int& depth_;
  };

  sim::Simulation& sim_;
  FluidNetwork& network_;
  // Dense store; settle/complete/reschedule sweeps use the slot map's
  // ordered walk so transfers are visited ascending by FlowId (completion
  // callbacks run in id order at a tie; float progress sums stay
  // reproducible — the order the old std::map iteration had).
  SlotMap<FlowId, Transfer> transfers_;
  /// Completion candidates: transfers whose remaining crossed the done
  /// epsilon during a settle (or were born at/below it).  complete_finished
  /// drains this instead of rescanning every transfer per completion;
  /// entries cancelled in the meantime are skipped by a liveness check.
  std::vector<FlowId> drained_;
  /// Per-window-position epsilon-crossing flags from the parallel settle
  /// phase; the serial merge scans them in window (= ascending id) order so
  /// drained_ fills exactly as the one-pass serial sweep did.  A member so
  /// steady-state settles reuse the allocation.
  std::vector<char> settle_crossed_;
  SimTime last_progress_{0.0};
  sim::EventHandle pending_;
  int busy_depth_ = 0;
};

}  // namespace vod::net
