#include "net/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "common/contract.h"

namespace vod::net {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}

SimTime TrafficModel::next_change_after(SimTime) const {
  return SimTime{kInfinity};
}

void ConstantTraffic::set_load(LinkId link, Mbps load) {
  require(link.valid(), "ConstantTraffic: invalid link");
  require(!(load.value() < 0.0), "ConstantTraffic: negative load");
  loads_[link] = load;
}

Mbps ConstantTraffic::background_load(LinkId link, SimTime) const {
  const auto it = loads_.find(link);
  return it == loads_.end() ? Mbps{0.0} : it->second;
}

void TraceTraffic::add_sample(LinkId link, SimTime t, Mbps load) {
  require(link.valid(), "TraceTraffic: invalid link");
  require(!(load.value() < 0.0), "TraceTraffic: negative load");
  auto& series = samples_[link];
  require(!(!series.empty() && !(series.back().first < t)),
      "TraceTraffic: samples must be strictly increasing in time");
  series.emplace_back(t, load);
}

Mbps TraceTraffic::background_load(LinkId link, SimTime t) const {
  const auto it = samples_.find(link);
  if (it == samples_.end() || it->second.empty()) return Mbps{0.0};
  const auto& series = it->second;
  // Step interpolation: value of the latest sample at or before t; before
  // the first sample the load is the first sample's value (the trace is a
  // day-long snapshot, not a ramp from zero).
  auto after = std::upper_bound(
      series.begin(), series.end(), t,
      [](SimTime time, const auto& sample) { return time < sample.first; });
  if (after == series.begin()) return series.front().second;
  return std::prev(after)->second;
}

SimTime TraceTraffic::next_change_after(SimTime t) const {
  double best = kInfinity;
  for (const auto& [link, series] : samples_) {
    auto after = std::upper_bound(
        series.begin(), series.end(), t,
        [](SimTime time, const auto& sample) { return time < sample.first; });
    if (after != series.end()) {
      best = std::min(best, after->first.seconds());
    }
  }
  return SimTime{best};
}

PeriodicTraffic::PeriodicTraffic(const TrafficModel& inner, Duration period)
    : inner_(inner), period_(period) {
  require(!(period.seconds() <= 0.0),
          "PeriodicTraffic: period must be positive");
}

Mbps PeriodicTraffic::background_load(LinkId link, SimTime t) const {
  const double wrapped = std::fmod(t.seconds(), period_.seconds());
  return inner_.background_load(link, SimTime{wrapped});
}

SimTime PeriodicTraffic::next_change_after(SimTime t) const {
  const double period = period_.seconds();
  const double cycle_start = std::floor(t.seconds() / period) * period;
  const double wrapped = t.seconds() - cycle_start;
  const SimTime inner_next = inner_.next_change_after(SimTime{wrapped});
  if (inner_next.seconds() < period) {
    return SimTime{cycle_start + inner_next.seconds()};
  }
  // Nothing more this cycle: the next change is the wrap itself (the
  // inner model's earliest change, next period).
  const SimTime first = inner_.next_change_after(SimTime{-1.0});
  const double offset =
      first.seconds() < period && first.seconds() >= 0.0
          ? first.seconds()
          : 0.0;
  return SimTime{cycle_start + period + offset};
}

DiurnalTraffic::DiurnalTraffic(double peak_hour) : peak_hour_(peak_hour) {
  require(!(peak_hour < 0.0 || peak_hour >= 24.0),
      "DiurnalTraffic: peak_hour outside [0,24)");
}

void DiurnalTraffic::set_shape(LinkId link, LinkShape shape) {
  require(link.valid(), "DiurnalTraffic: invalid link");
  require(!(shape.capacity.value() <= 0.0),
      "DiurnalTraffic: capacity must be positive");
  require(
      !(shape.base_fraction < 0.0 || shape.peak_fraction > 1.0 || shape.base_fraction > shape.peak_fraction),
      "DiurnalTraffic: need 0 <= base <= peak <= 1");
  shapes_[link] = shape;
}

Mbps DiurnalTraffic::background_load(LinkId link, SimTime t) const {
  const auto it = shapes_.find(link);
  if (it == shapes_.end()) return Mbps{0.0};
  const LinkShape& shape = it->second;
  const double hour = std::fmod(t.seconds() / 3600.0, 24.0);
  // Raised cosine, maximal at peak_hour_.
  const double phase =
      std::cos((hour - peak_hour_) / 24.0 * 2.0 * std::numbers::pi);
  const double weight = 0.5 * (1.0 + phase);  // in [0,1], 1 at the peak
  const double fraction =
      shape.base_fraction +
      (shape.peak_fraction - shape.base_fraction) * weight;
  return shape.capacity * fraction;
}

SimTime DiurnalTraffic::next_change_after(SimTime t) const {
  if (shapes_.empty()) return SimTime{kInfinity};
  // The curve changes continuously; report a 60 s quantization so consumers
  // refresh about once a simulated minute (the SNMP cadence).
  const double next = (std::floor(t.seconds() / 60.0) + 1.0) * 60.0;
  return SimTime{next};
}

}  // namespace vod::net
