// Static network topology: named nodes joined by undirected capacity links.
//
// This is the "predefined network" the paper requires — all participating
// nodes and their link bandwidths are known in advance (service
// initialization, section "Service initialization").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace vod::net {

/// A backbone link between two sites.
struct LinkInfo {
  LinkId id;
  NodeId a;
  NodeId b;
  Mbps capacity;
  std::string name;  // e.g. "Patra-Athens"

  /// The endpoint that is not `node`; throws if `node` is neither endpoint.
  [[nodiscard]] NodeId other_end(NodeId node) const;
};

/// The network graph with node names and link capacities.  Immutable after
/// construction in typical use; nodes/links are appended densely.
class Topology {
 public:
  NodeId add_node(std::string name);

  /// Adds an undirected link; endpoints must exist and differ, capacity must
  /// be positive.  Duplicate (a,b) links are allowed (parallel links).
  LinkId add_link(NodeId a, NodeId b, Mbps capacity, std::string name = {});

  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const std::string& node_name(NodeId node) const;
  [[nodiscard]] const LinkInfo& link(LinkId link) const;
  [[nodiscard]] const std::vector<LinkInfo>& links() const { return links_; }

  /// Links with `node` as an endpoint (the "adjacent links" of eq. 2).
  [[nodiscard]] const std::vector<LinkId>& links_adjacent_to(
      NodeId node) const;

  /// First link joining `a` and `b` (either orientation), if any.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  /// Node with the given name, if any.
  [[nodiscard]] std::optional<NodeId> find_node(
      const std::string& name) const;

  [[nodiscard]] bool has_node(NodeId node) const {
    return node.valid() && node.value() < node_names_.size();
  }
  [[nodiscard]] bool has_link(LinkId link) const {
    return link.valid() && link.value() < links_.size();
  }

 private:
  void check_node(NodeId node) const;

  std::vector<std::string> node_names_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace vod::net
