#include "net/topology.h"

#include <stdexcept>
#include <utility>

#include "common/contract.h"

namespace vod::net {

NodeId LinkInfo::other_end(NodeId node) const {
  if (node == a) return b;
  if (node == b) return a;
  fail_require("LinkInfo::other_end: node not an endpoint");
}

NodeId Topology::add_node(std::string name) {
  require(!name.empty(), "Topology::add_node: empty name");
  const NodeId id{static_cast<NodeId::underlying_type>(node_names_.size())};
  node_names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return id;
}

void Topology::check_node(NodeId node) const {
  require(has_node(node), "Topology: unknown node");
}

LinkId Topology::add_link(NodeId a, NodeId b, Mbps capacity,
                          std::string name) {
  check_node(a);
  check_node(b);
  require(a != b, "Topology::add_link: self-loop");
  require(!(capacity.value() <= 0.0),
      "Topology::add_link: capacity must be positive");
  const LinkId id{static_cast<LinkId::underlying_type>(links_.size())};
  if (name.empty()) {
    name = node_names_[a.value()] + "-" + node_names_[b.value()];
  }
  links_.push_back(LinkInfo{id, a, b, capacity, std::move(name)});
  adjacency_[a.value()].push_back(id);
  adjacency_[b.value()].push_back(id);
  return id;
}

const std::string& Topology::node_name(NodeId node) const {
  check_node(node);
  return node_names_[node.value()];
}

const LinkInfo& Topology::link(LinkId link) const {
  require_found(has_link(link), "Topology::link: unknown link");
  return links_[link.value()];
}

const std::vector<LinkId>& Topology::links_adjacent_to(NodeId node) const {
  check_node(node);
  return adjacency_[node.value()];
}

std::optional<LinkId> Topology::find_link(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  for (const LinkId id : adjacency_[a.value()]) {
    const LinkInfo& info = links_[id.value()];
    if ((info.a == a && info.b == b) || (info.a == b && info.b == a)) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<NodeId> Topology::find_node(const std::string& name) const {
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) {
      return NodeId{static_cast<NodeId::underlying_type>(i)};
    }
  }
  return std::nullopt;
}

}  // namespace vod::net
