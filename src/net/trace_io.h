// Loading background-traffic traces from CSV.
//
// Lets users drive the simulator with their own SNMP exports, the way the
// paper drove its case study with GRNET's counters.  Format (header
// required):
//
//   link,time_s,used_mbps
//   Patra-Athens,28800,0.2
//   Patra-Athens,36000,1.82
//   ...
//
// `link` is the topology link name; rows per link must be time-ascending
// (TraceTraffic's step semantics apply).
#pragma once

#include <string>

#include "net/topology.h"
#include "net/traffic.h"

namespace vod::net {

/// Parses CSV text into a TraceTraffic bound to `topology`'s link names.
/// Throws std::invalid_argument with a line number on malformed input or
/// unknown link names.
TraceTraffic load_trace_csv(const std::string& csv_text,
                            const Topology& topology);

/// Serializes a sampling of `traffic` back to the same CSV format: one row
/// per link per sample time.  Useful for exporting synthetic (e.g.
/// diurnal) traces to feed other tools or re-load later.
std::string save_trace_csv(const TrafficModel& traffic,
                           const Topology& topology,
                           const std::vector<SimTime>& sample_times);

}  // namespace vod::net
