// A client streaming session.
//
// The video is fetched cluster by cluster (the striping unit c): before each
// cluster the selection policy is consulted again, so the source server can
// change mid-stream exactly as the paper describes ("the next cluster will
// be requested from the new optimal server").  Cluster k+1 starts
// downloading the moment cluster k finishes; playback runs concurrently at
// the title's bitrate, and the session records startup delay, rebuffering
// and server switches.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/units.h"
#include "common/user_class.h"
#include "db/records.h"
#include "net/transfer.h"
#include "stream/policy.h"

namespace vod::stream {

/// Sentinel for SessionOptions::stall_timeout_seconds: derive the timeout
/// from the cluster size and the flow cap (3x the expected transfer time of
/// one cluster at full cap), so out-of-the-box sessions cannot hang forever
/// on a dead source.
inline constexpr double kAutoStallTimeout = -1.0;

/// Session tuning.
struct SessionOptions {
  /// Clusters that must be fully downloaded before playback starts.
  std::size_t prebuffer_clusters = 1;
  /// Per-flow rate cap (client access line / player limit).
  Mbps flow_cap{8.0};
  /// Rate for clusters served from the home server's own disks.
  Mbps local_rate{80.0};
  /// If a cluster download exceeds this, abort it and ask the policy for a
  /// (possibly different) source — the recovery path for link/server
  /// failures mid-stream.  kAutoStallTimeout derives a finite default from
  /// cluster size and flow cap; infinity disables the watchdog (the
  /// paper-exact configuration).
  double stall_timeout_seconds = kAutoStallTimeout;
  /// A transfer still delivering at least this rate when the watchdog fires
  /// is slow-but-alive (congestion, not failure): the watchdog re-arms
  /// instead of aborting it.  A flow across a dead link reads exactly 0.
  Mbps stall_rate_floor{0.01};
  /// Stall retries tolerated per cluster before the session fails — a long
  /// title with several independent transient stalls must not exhaust one
  /// shared budget when every cluster recovered.
  int max_retries = 5;
  /// Stall retries tolerated across the whole session (genuinely dead
  /// titles must still fail instead of retrying per cluster forever).
  int max_total_retries = 25;
  /// Service tier this session streams at.  Purely a label at this layer
  /// (the service's admission/shedding logic reads it); the knobs below
  /// carry its bandwidth-share and patience consequences.
  UserClass user_class = UserClass::kStandard;
  /// Weight of this session's transfers in the fluid network's weighted
  /// max-min fill (1 = classless default; premium classes set it higher to
  /// take a larger share of contended links).
  std::uint32_t flow_weight = 1;
  /// Multiplier on the resolved stall timeout: background sessions scale
  /// it down (give up sooner, shedding load first under a fault storm),
  /// premium sessions scale it up (more patient).  1.0 leaves the resolved
  /// timeout bit-identical to the unscaled value.
  double stall_timeout_scale = 1.0;
};

/// Everything measured about one session.
struct SessionMetrics {
  SimTime requested_at{0.0};
  std::optional<SimTime> playback_started_at;
  std::optional<SimTime> download_completed_at;
  std::optional<SimTime> playback_finished_at;

  /// Seconds from request to first playable frame.
  [[nodiscard]] double startup_delay() const {
    return playback_started_at ? *playback_started_at - requested_at : 0.0;
  }

  double rebuffer_seconds = 0.0;
  int rebuffer_events = 0;
  int server_switches = 0;
  /// Cluster fetches abandoned by the stall watchdog and retried.
  int stall_retries = 0;
  /// Source re-selections forced by a fault notification (fail_over),
  /// without waiting for the watchdog.
  int proactive_failovers = 0;
  /// Seconds from each fault notification on the streaming path to the
  /// session streaming again from a (possibly different) source.
  std::vector<double> failover_latencies;
  /// Completed VCR pause intervals (pause time, resume time).
  std::vector<std::pair<SimTime, SimTime>> pauses;

  [[nodiscard]] double total_paused_seconds() const {
    double total = 0.0;
    for (const auto& [from, to] : pauses) total += to - from;
    return total;
  }

  /// Source server of each cluster, in order.
  std::vector<NodeId> cluster_sources;
  /// Completion time of each cluster download.
  std::vector<SimTime> cluster_completed;

  bool finished = false;
  bool failed = false;
  std::string failure_reason;

  /// Mean delivered rate over the whole download (set when it finishes).
  Mbps mean_delivered_rate{0.0};

  /// True when playback never stalled after starting.
  [[nodiscard]] bool smooth() const {
    return finished && rebuffer_events == 0;
  }

  /// The paper's QoS goal: a minimum sustainable rate ("the minimum video
  /// frame rate for which a video can be considered decent").  Met when
  /// the session finished, never rebuffered, and delivered at least
  /// `floor` on average.
  [[nodiscard]] bool meets_qos_floor(Mbps floor) const {
    return smooth() && mean_delivered_rate >= floor;
  }
};

/// Drives one video download + playback inside the simulation.
class Session {
 public:
  using DoneCallback = std::function<void(const Session&)>;

  /// References must outlive the session.  `cluster_size` is the striping
  /// unit c; `video` comes from the catalog.
  Session(sim::Simulation& sim, net::TransferManager& transfers,
          ServerSelectionPolicy& policy, db::VideoInfo video, NodeId home,
          MegaBytes cluster_size, SessionOptions options = {},
          DoneCallback on_done = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Schedules the first cluster fetch at the current simulation time.
  void start();

  /// VCR pause: playback consumption stops (the download continues — a
  /// paused player keeps buffering).  No-op if already paused or done.
  /// Pauses are honored while the download is in flight; a pause still
  /// open when the last cluster lands is clipped there (afterwards the
  /// pause is the player's business, not the distribution service's).
  void pause();

  /// VCR resume; no-op if not paused.
  void resume();

  [[nodiscard]] bool paused() const { return pause_started_.has_value(); }

  /// Aborts the session (cancels any in-flight transfer).
  void abort(const std::string& reason);

  // ---- fault notifications (service failover machinery) ----

  /// Stamps "a fault hit the streaming path now"; the next successful
  /// cluster fetch records the elapsed time as failover latency.  No-op
  /// when the session is not mid-transfer.
  void mark_source_fault(SimTime now);

  /// Abandons the in-flight transfer and re-consults the policy
  /// immediately (the proactive recovery path).  Does not touch the stall
  /// retry budgets; fails the session only when no source is left.
  /// No-op when the session is not mid-transfer.
  void fail_over(const std::string& cause);

  /// Models the source server dying while its path links stay up: cancels
  /// the in-flight transfer without re-selecting, so the bytes simply stop
  /// arriving and only the stall watchdog (if armed) can rescue the
  /// session.  Used by the watchdog-only baseline.
  void black_hole_inflight();

  /// The server currently being streamed from (nullopt when idle or done).
  [[nodiscard]] std::optional<NodeId> streaming_source() const;

  /// Links of the in-flight transfer's path (empty when idle or local).
  [[nodiscard]] const std::vector<LinkId>& inflight_links() const {
    return inflight_path_;
  }

  /// The resolved watchdog timeout (finite when kAutoStallTimeout was
  /// passed; infinity when disabled).
  [[nodiscard]] double stall_timeout_seconds() const {
    return stall_timeout_;
  }

  /// Labels this session's trace events (the async begin/end pair and the
  /// per-session instants all carry this id).  Set by the service before
  /// start(); sessions started without one trace as id 0.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  /// Chains another completion callback (after any existing ones) — used
  /// when a coalesced request joins this session.  Throws std::logic_error
  /// if the session already ended.
  void add_done_callback(DoneCallback callback);

  /// Current delivered rate of the in-flight transfer (0 when idle, done,
  /// or black-holed) — what a preemption planner can actually reclaim by
  /// aborting this session right now.
  [[nodiscard]] Mbps inflight_rate() const;

  [[nodiscard]] const SessionMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const db::VideoInfo& video() const { return video_; }
  [[nodiscard]] UserClass user_class() const { return options_.user_class; }
  [[nodiscard]] NodeId home() const { return home_; }
  [[nodiscard]] std::size_t cluster_count() const {
    return part_sizes_.size();
  }
  [[nodiscard]] bool active() const { return started_ && !done_; }

 private:
  void fetch_next_cluster(SimTime now);
  void on_cluster_done(std::size_t index, SimTime now);
  void on_stall_timeout(std::size_t index, SimTime now);
  void cancel_watchdog();
  /// Derives playback timing (startup, rebuffers) from cluster completion
  /// times; called once the download finishes or fails.
  void finalize_playback();
  void finish(SimTime now);
  void fail(SimTime now, const std::string& reason);

  sim::Simulation& sim_;
  net::TransferManager& transfers_;
  ServerSelectionPolicy& policy_;
  db::VideoInfo video_;
  NodeId home_;
  SessionOptions options_;
  DoneCallback on_done_;

  /// Wall time after consuming `content` of video starting at wall time
  /// `from`, accounting for the recorded pause intervals.
  [[nodiscard]] double advance_playhead(double from, Duration content) const;

  std::vector<MegaBytes> part_sizes_;
  std::size_t next_cluster_ = 0;
  std::optional<FlowId> inflight_;
  std::vector<LinkId> inflight_path_;
  std::optional<SimTime> pause_started_;
  /// When a fault notification hit the in-flight transfer: the instant, for
  /// the failover-latency measurement closed by the next successful fetch.
  std::optional<SimTime> pending_fault_at_;
  sim::EventHandle watchdog_;
  double stall_timeout_ = 0.0;   // resolved from options in the constructor
  int retries_this_cluster_ = 0;
  bool started_ = false;
  bool done_ = false;
  std::uint64_t trace_id_ = 0;
  SessionMetrics metrics_;
};

}  // namespace vod::stream
