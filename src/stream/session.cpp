#include "stream/session.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "storage/striping.h"

namespace vod::stream {

Session::Session(sim::Simulation& sim, net::TransferManager& transfers,
                 ServerSelectionPolicy& policy, db::VideoInfo video,
                 NodeId home, MegaBytes cluster_size, SessionOptions options,
                 DoneCallback on_done)
    : sim_(sim),
      transfers_(transfers),
      policy_(policy),
      video_(std::move(video)),
      home_(home),
      options_(options),
      on_done_(std::move(on_done)) {
  if (!home.valid()) {
    throw std::invalid_argument("Session: invalid home node");
  }
  if (cluster_size.value() <= 0.0) {
    throw std::invalid_argument("Session: cluster size must be positive");
  }
  if (options_.prebuffer_clusters == 0) {
    throw std::invalid_argument("Session: prebuffer must be >= 1 cluster");
  }
  // The striping plan defines the cluster boundaries; the disk count is
  // irrelevant for sizes, so any positive count works here.
  const storage::StripePlacement plan =
      storage::plan_striping(video_.id, video_.size, cluster_size, 1);
  part_sizes_ = plan.part_sizes;
}

Session::~Session() {
  cancel_watchdog();
  if (inflight_ && transfers_.active(*inflight_)) {
    transfers_.cancel(*inflight_);
  }
}

void Session::start() {
  if (started_) {
    throw std::logic_error("Session::start: already started");
  }
  started_ = true;
  metrics_.requested_at = sim_.now();
  fetch_next_cluster(sim_.now());
}

void Session::abort(const std::string& reason) {
  if (!active()) return;
  fail(sim_.now(), reason);
}

void Session::add_done_callback(DoneCallback callback) {
  if (!callback) return;
  if (done_) {
    throw std::logic_error("Session::add_done_callback: already done");
  }
  if (!on_done_) {
    on_done_ = std::move(callback);
    return;
  }
  on_done_ = [first = std::move(on_done_),
              second = std::move(callback)](const Session& session) {
    first(session);
    second(session);
  };
}

void Session::pause() {
  if (done_ || pause_started_) return;
  pause_started_ = sim_.now();
}

void Session::resume() {
  if (!pause_started_) return;
  metrics_.pauses.emplace_back(*pause_started_, sim_.now());
  pause_started_.reset();
}

double Session::advance_playhead(double from, double content_seconds) const {
  double wall = from;
  double left = content_seconds;
  for (const auto& [pause_at, resume_at] : metrics_.pauses) {
    const double p = pause_at.seconds();
    const double r = resume_at.seconds();
    if (p >= wall + left) break;  // pause begins after this content ends
    if (r <= wall) continue;      // pause already over
    if (p > wall) {
      left -= p - wall;  // play up to the pause
      wall = p;
    }
    wall = r;  // sit out the pause
  }
  return wall + left;
}

void Session::fetch_next_cluster(SimTime now) {
  const std::size_t index = next_cluster_;
  const auto selection = policy_.select_cluster(home_, video_.id, index);
  if (!selection) {
    fail(now, "no server can provide the title");
    return;
  }

  if (!metrics_.cluster_sources.empty() &&
      metrics_.cluster_sources.back() != selection->server) {
    ++metrics_.server_switches;
    VOD_LOG_DEBUG("session: switched source for cluster " << index);
  }
  metrics_.cluster_sources.push_back(selection->server);

  const bool local = selection->path.links.empty();
  const Mbps cap = local ? options_.local_rate : options_.flow_cap;
  inflight_ = transfers_.start_transfer(
      selection->path.links, part_sizes_[index], cap,
      [this, index](SimTime t) { on_cluster_done(index, t); });

  if (options_.stall_timeout_seconds !=
      std::numeric_limits<double>::infinity()) {
    watchdog_ = sim_.schedule_in(
        options_.stall_timeout_seconds,
        [this, index](SimTime t) { on_stall_timeout(index, t); });
  }
}

void Session::cancel_watchdog() {
  if (watchdog_.valid()) {
    sim_.queue().cancel(watchdog_);
    watchdog_ = sim::EventHandle{};
  }
}

void Session::on_stall_timeout(std::size_t index, SimTime now) {
  watchdog_ = sim::EventHandle{};
  if (done_ || index != next_cluster_ || !inflight_) return;
  // The cluster is overdue: abandon the transfer and re-select a source.
  transfers_.cancel(*inflight_);
  inflight_.reset();
  ++metrics_.stall_retries;
  // Forget the abandoned source so a return to it counts as a new choice.
  metrics_.cluster_sources.pop_back();
  if (metrics_.stall_retries > options_.max_retries) {
    fail(now, "cluster stalled beyond retry budget");
    return;
  }
  VOD_LOG_INFO("session: cluster " << index << " stalled; retrying");
  fetch_next_cluster(now);
}

void Session::on_cluster_done(std::size_t index, SimTime now) {
  if (index != metrics_.cluster_completed.size()) {
    throw std::logic_error("Session: clusters completed out of order");
  }
  cancel_watchdog();
  inflight_.reset();
  metrics_.cluster_completed.push_back(now);
  ++next_cluster_;
  if (next_cluster_ == part_sizes_.size()) {
    finish(now);
  } else {
    fetch_next_cluster(now);
  }
}

void Session::finalize_playback() {
  // Reconstruct the playback timeline from cluster completion times.
  // Playback begins once `prebuffer_clusters` clusters have arrived; each
  // cluster plays for part_size * 8 / bitrate seconds; a cluster arriving
  // after the playhead reached it is a rebuffer event.
  const std::size_t done = metrics_.cluster_completed.size();
  if (done == 0) return;

  const std::size_t prebuffer =
      std::min(options_.prebuffer_clusters, part_sizes_.size());
  if (done < prebuffer) return;  // never started playing

  // Playback begins once the prebuffer is in — or once the user unpauses,
  // whichever is later.
  const SimTime buffered = metrics_.cluster_completed[prebuffer - 1];
  const double start = advance_playhead(buffered.seconds(), 0.0);
  metrics_.playback_started_at = SimTime{start};

  double playhead = start;
  for (std::size_t k = 0; k < done; ++k) {
    const double arrival = metrics_.cluster_completed[k].seconds();
    if (arrival > playhead) {
      // Stall: the playhead waited for this cluster.
      metrics_.rebuffer_seconds += arrival - playhead;
      ++metrics_.rebuffer_events;
      playhead = arrival;
    }
    playhead = advance_playhead(
        playhead, part_sizes_[k].megabits() / video_.bitrate.value());
  }
  if (metrics_.finished) {
    metrics_.playback_finished_at = SimTime{playhead};
  }
}

void Session::finish(SimTime now) {
  if (pause_started_) resume();  // close an open pause at "now"
  done_ = true;
  metrics_.finished = true;
  metrics_.download_completed_at = now;
  const double span = now - metrics_.requested_at;
  if (span > 0.0) {
    metrics_.mean_delivered_rate = Mbps{video_.size.megabits() / span};
  }
  finalize_playback();
  if (on_done_) on_done_(*this);
}

void Session::fail(SimTime now, const std::string& reason) {
  if (pause_started_) resume();  // close an open pause at "now"
  cancel_watchdog();
  done_ = true;
  metrics_.failed = true;
  metrics_.failure_reason = reason;
  metrics_.download_completed_at = now;
  if (inflight_ && transfers_.active(*inflight_)) {
    transfers_.cancel(*inflight_);
  }
  inflight_.reset();
  finalize_playback();
  if (on_done_) on_done_(*this);
}

}  // namespace vod::stream
