#include "stream/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contract.h"
#include "common/log.h"
#include "obs/trace.h"
#include "storage/striping.h"

namespace vod::stream {

namespace {

/// One per-session instant, tagged with the session's trace id.
void trace_session(const char* name, std::uint64_t sid,
                   std::vector<obs::TraceArg> args = {}) {
  obs::TraceRecorder* tr = obs::trace_sink();
  if (tr == nullptr) return;
  args.insert(args.begin(), {"sid", obs::num(sid)});
  tr->instant(obs::Subsystem::kSession, name, std::move(args));
}

}  // namespace

Session::Session(sim::Simulation& sim, net::TransferManager& transfers,
                 ServerSelectionPolicy& policy, db::VideoInfo video,
                 NodeId home, MegaBytes cluster_size, SessionOptions options,
                 DoneCallback on_done)
    : sim_(sim),
      transfers_(transfers),
      policy_(policy),
      video_(std::move(video)),
      home_(home),
      options_(options),
      on_done_(std::move(on_done)) {
  require(home.valid(), "Session: invalid home node");
  require(!(cluster_size.value() <= 0.0),
      "Session: cluster size must be positive");
  require(options_.prebuffer_clusters != 0,
      "Session: prebuffer must be >= 1 cluster");
  require(options_.flow_weight >= 1, "Session: flow weight must be >= 1");
  require(options_.stall_timeout_scale > 0.0,
      "Session: stall timeout scale must be positive");
  if (options_.stall_timeout_seconds == kAutoStallTimeout) {
    require(!(options_.flow_cap.value() <= 0.0),
        "Session: flow cap must be positive");
    stall_timeout_ =
        3.0 * cluster_size.megabits() / options_.flow_cap.value();
  } else if (options_.stall_timeout_seconds > 0.0) {
    stall_timeout_ = options_.stall_timeout_seconds;  // infinity disables
  } else {
    fail_require(
        "Session: stall timeout must be positive, infinity, or "
        "kAutoStallTimeout");
  }
  // Class patience knob; x1.0 is the bit-identical classless default (and
  // scaling infinity keeps the watchdog disabled).
  if (options_.stall_timeout_scale != 1.0) {
    stall_timeout_ *= options_.stall_timeout_scale;
  }
  // The striping plan defines the cluster boundaries; the disk count is
  // irrelevant for sizes, so any positive count works here.
  const storage::StripePlacement plan =
      storage::plan_striping(video_.id, video_.size, cluster_size, 1);
  part_sizes_ = plan.part_sizes;
}

Session::~Session() {
  cancel_watchdog();
  if (inflight_ && transfers_.active(*inflight_)) {
    transfers_.cancel(*inflight_);
  }
}

void Session::start() {
  ensure(!started_, "Session::start: already started");
  started_ = true;
  metrics_.requested_at = sim_.now();
  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    tr->async_begin(
        obs::Subsystem::kSession, "session", trace_id_,
        {{"video", obs::num(static_cast<std::uint64_t>(video_.id.value()))},
         {"home", obs::num(static_cast<std::uint64_t>(home_.value()))}});
  }
  fetch_next_cluster(sim_.now());
}

void Session::abort(const std::string& reason) {
  if (!active()) return;
  fail(sim_.now(), reason);
}

void Session::add_done_callback(DoneCallback callback) {
  if (!callback) return;
  ensure(!done_, "Session::add_done_callback: already done");
  if (!on_done_) {
    on_done_ = std::move(callback);
    return;
  }
  on_done_ = [first = std::move(on_done_),
              second = std::move(callback)](const Session& session) {
    first(session);
    second(session);
  };
}

void Session::pause() {
  if (done_ || pause_started_) return;
  pause_started_ = sim_.now();
}

void Session::resume() {
  if (!pause_started_) return;
  metrics_.pauses.emplace_back(*pause_started_, sim_.now());
  pause_started_.reset();
}

double Session::advance_playhead(double from, Duration content) const {
  double wall = from;
  double left = content.seconds();
  for (const auto& [pause_at, resume_at] : metrics_.pauses) {
    const double p = pause_at.seconds();
    const double r = resume_at.seconds();
    if (p >= wall + left) break;  // pause begins after this content ends
    if (r <= wall) continue;      // pause already over
    if (p > wall) {
      left -= p - wall;  // play up to the pause
      wall = p;
    }
    wall = r;  // sit out the pause
  }
  return wall + left;
}

void Session::fetch_next_cluster(SimTime now) {
  const std::size_t index = next_cluster_;
  const auto selection = policy_.select_cluster(home_, video_.id, index);
  if (!selection) {
    fail(now, "no server can provide the title");
    return;
  }

  if (!metrics_.cluster_sources.empty() &&
      metrics_.cluster_sources.back() != selection->server) {
    ++metrics_.server_switches;
    VOD_LOG_DEBUG("session: switched source for cluster " << index);
    trace_session(
        "session.switch", trace_id_,
        {{"cluster", obs::num(static_cast<std::uint64_t>(index))},
         {"from", obs::num(static_cast<std::uint64_t>(
              metrics_.cluster_sources.back().value()))},
         {"to", obs::num(static_cast<std::uint64_t>(
              selection->server.value()))}});
  }
  metrics_.cluster_sources.push_back(selection->server);

  if (pending_fault_at_) {
    metrics_.failover_latencies.push_back(now - *pending_fault_at_);
    pending_fault_at_.reset();
  }

  const bool local = selection->path.links.empty();
  const Mbps cap = local ? options_.local_rate : options_.flow_cap;
  inflight_path_ = selection->path.links;
  inflight_ = transfers_.start_transfer(
      selection->path.links, part_sizes_[index], cap,
      [this, index](SimTime t) { on_cluster_done(index, t); },
      options_.flow_weight);

  if (std::isfinite(stall_timeout_)) {
    watchdog_ = sim_.schedule_in(
        Duration{stall_timeout_},
        [this, index](SimTime t) { on_stall_timeout(index, t); });
  }
}

void Session::cancel_watchdog() {
  if (watchdog_.valid()) {
    sim_.queue().cancel(watchdog_);
    watchdog_ = sim::EventHandle{};
  }
}

void Session::on_stall_timeout(std::size_t index, SimTime now) {
  watchdog_ = sim::EventHandle{};
  if (done_ || index != next_cluster_ || !inflight_) return;
  // A transfer still delivering is congested, not dead: let it run and
  // check again one timeout from now.
  if (transfers_.active(*inflight_) &&
      transfers_.current_rate(*inflight_) >= options_.stall_rate_floor) {
    watchdog_ = sim_.schedule_in(
        Duration{stall_timeout_},
        [this, index](SimTime t) { on_stall_timeout(index, t); });
    return;
  }
  // The cluster is overdue: abandon the transfer and re-select a source.
  // (The flow may already be gone if the source was black-holed.)
  // One allocation epoch spans the abandon + the retry's replacement flow.
  const net::FluidNetwork::BatchGuard epoch =
      transfers_.network().defer_reallocate();
  if (transfers_.active(*inflight_)) transfers_.cancel(*inflight_);
  inflight_.reset();
  inflight_path_.clear();
  ++metrics_.stall_retries;
  ++retries_this_cluster_;
  // Forget the abandoned source so a return to it counts as a new choice.
  metrics_.cluster_sources.pop_back();
  if (retries_this_cluster_ > options_.max_retries) {
    fail(now, "cluster stalled beyond retry budget");
    return;
  }
  if (metrics_.stall_retries > options_.max_total_retries) {
    fail(now, "session stalled beyond total retry budget");
    return;
  }
  VOD_LOG_INFO("session: cluster " << index << " stalled; retrying");
  trace_session("session.stall", trace_id_,
                {{"cluster", obs::num(static_cast<std::uint64_t>(index))},
                 {"retries", obs::num(static_cast<std::uint64_t>(
                      metrics_.stall_retries))}});
  fetch_next_cluster(now);
}

void Session::on_cluster_done(std::size_t index, SimTime now) {
  ensure(index == metrics_.cluster_completed.size(),
      "Session: clusters completed out of order");
  cancel_watchdog();
  inflight_.reset();
  inflight_path_.clear();
  retries_this_cluster_ = 0;
  metrics_.cluster_completed.push_back(now);
  ++next_cluster_;
  if (next_cluster_ == part_sizes_.size()) {
    finish(now);
  } else {
    fetch_next_cluster(now);
  }
}

void Session::mark_source_fault(SimTime now) {
  if (!active() || !inflight_) return;
  if (!pending_fault_at_) pending_fault_at_ = now;
}

void Session::fail_over(const std::string& cause) {
  if (!active() || !inflight_) return;
  // The teardown of the doomed transfer and the start of its replacement
  // happen at one instant: solve the fair shares once, when both are in.
  const net::FluidNetwork::BatchGuard epoch =
      transfers_.network().defer_reallocate();
  cancel_watchdog();
  if (transfers_.active(*inflight_)) transfers_.cancel(*inflight_);
  inflight_.reset();
  inflight_path_.clear();
  metrics_.cluster_sources.pop_back();
  ++metrics_.proactive_failovers;
  VOD_LOG_INFO("session: failing over (" << cause << ")");
  trace_session("session.failover", trace_id_, {{"cause", cause}});
  fetch_next_cluster(sim_.now());
}

void Session::black_hole_inflight() {
  if (!active() || !inflight_) return;
  // Keep inflight_ set: from the session's view the download is still
  // "running", it just never delivers another byte.
  if (transfers_.active(*inflight_)) transfers_.cancel(*inflight_);
}

Mbps Session::inflight_rate() const {
  if (!active() || !inflight_ || !transfers_.active(*inflight_)) {
    return Mbps{0.0};
  }
  return transfers_.current_rate(*inflight_);
}

std::optional<NodeId> Session::streaming_source() const {
  if (!active() || !inflight_) return std::nullopt;
  return metrics_.cluster_sources.back();
}

void Session::finalize_playback() {
  // Reconstruct the playback timeline from cluster completion times.
  // Playback begins once `prebuffer_clusters` clusters have arrived; each
  // cluster plays for part_size * 8 / bitrate seconds; a cluster arriving
  // after the playhead reached it is a rebuffer event.
  const std::size_t done = metrics_.cluster_completed.size();
  if (done == 0) return;

  const std::size_t prebuffer =
      std::min(options_.prebuffer_clusters, part_sizes_.size());
  if (done < prebuffer) return;  // never started playing

  // Playback begins once the prebuffer is in — or once the user unpauses,
  // whichever is later.
  const SimTime buffered = metrics_.cluster_completed[prebuffer - 1];
  const double start = advance_playhead(buffered.seconds(), Duration{0.0});
  metrics_.playback_started_at = SimTime{start};

  double playhead = start;
  for (std::size_t k = 0; k < done; ++k) {
    const double arrival = metrics_.cluster_completed[k].seconds();
    if (arrival > playhead) {
      // Stall: the playhead waited for this cluster.
      metrics_.rebuffer_seconds += arrival - playhead;
      ++metrics_.rebuffer_events;
      playhead = arrival;
    }
    playhead = advance_playhead(
        playhead,
        Duration{part_sizes_[k].megabits() / video_.bitrate.value()});
  }
  if (metrics_.finished) {
    metrics_.playback_finished_at = SimTime{playhead};
  }
}

void Session::finish(SimTime now) {
  if (pause_started_) resume();  // close an open pause at "now"
  done_ = true;
  metrics_.finished = true;
  metrics_.download_completed_at = now;
  const double span = now - metrics_.requested_at;
  if (span > 0.0) {
    metrics_.mean_delivered_rate = Mbps{video_.size.megabits() / span};
  }
  finalize_playback();
  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    trace_session("session.finish", trace_id_,
                  {{"switches", obs::num(static_cast<std::uint64_t>(
                       metrics_.server_switches))}});
    tr->async_end(obs::Subsystem::kSession, "session", trace_id_);
  }
  if (on_done_) on_done_(*this);
}

void Session::fail(SimTime now, const std::string& reason) {
  if (pause_started_) resume();  // close an open pause at "now"
  cancel_watchdog();
  done_ = true;
  metrics_.failed = true;
  metrics_.failure_reason = reason;
  metrics_.download_completed_at = now;
  if (inflight_ && transfers_.active(*inflight_)) {
    transfers_.cancel(*inflight_);
  }
  inflight_.reset();
  inflight_path_.clear();
  finalize_playback();
  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    trace_session("session.fail", trace_id_, {{"reason", reason}});
    tr->async_end(obs::Subsystem::kSession, "session", trace_id_);
  }
  if (on_done_) on_done_(*this);
}

}  // namespace vod::stream
