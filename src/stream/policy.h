// Server-selection policy interface.
//
// The streaming layer asks a policy, before every cluster fetch, which
// server to pull the next cluster from.  The paper's answer is the VRA
// (re-run continuously, enabling mid-stream switching); the baselines
// answer differently.
#pragma once

#include <map>
#include <optional>
#include <utility>

#include "common/ids.h"
#include "routing/path.h"
#include "vra/vra.h"

namespace vod::stream {

/// A policy's answer: the source server and the route to it (empty path =
/// the client's home server serves locally).
struct Selection {
  NodeId server;
  routing::Path path;
};

class ServerSelectionPolicy {
 public:
  virtual ~ServerSelectionPolicy() = default;

  /// Chooses a source for the next cluster of `video` for a client homed at
  /// `home`; nullopt when no server can currently provide it.
  [[nodiscard]] virtual std::optional<Selection> select(NodeId home,
                                                        VideoId video) = 0;

  /// Cluster-aware variant; the default ignores the index (the paper's
  /// VRA re-runs the same selection for every cluster).  Policies for
  /// strip-level placement (the paper's future-work extension) override
  /// this to route cluster k to the server holding strip k.
  [[nodiscard]] virtual std::optional<Selection> select_cluster(
      NodeId home, VideoId video, std::size_t /*cluster_index*/) {
    return select(home, video);
  }

  /// Human-readable name for bench output.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The paper's policy: run the VRA afresh for every cluster.
///
/// `switch_hysteresis` is an extension beyond the paper (default 0 =
/// paper behaviour): once a source is chosen for a (home, video) pair, the
/// policy switches away only when the new best path is cheaper than
/// staying by more than the given fraction.  Because the SNMP counters
/// include the session's own flow, a zero-hysteresis VRA penalizes
/// whatever path it is currently using and can oscillate between equally
/// good replicas; a small margin suppresses that flapping.
class VraPolicy final : public ServerSelectionPolicy {
 public:
  /// `vra` must outlive the policy.  `switch_hysteresis` in [0, 1).
  explicit VraPolicy(const vra::Vra& vra, double switch_hysteresis = 0.0);

  [[nodiscard]] std::optional<Selection> select(NodeId home,
                                                VideoId video) override;
  [[nodiscard]] const char* name() const override { return "VRA"; }

  /// Forgets sticky choices (between benchmark repetitions).
  void reset() { last_choice_.clear(); }

 private:
  const vra::Vra& vra_;
  double hysteresis_;
  std::map<std::pair<NodeId, VideoId>, NodeId> last_choice_;
};

}  // namespace vod::stream
