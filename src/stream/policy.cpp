#include "stream/policy.h"

#include <stdexcept>

#include "common/contract.h"

namespace vod::stream {

VraPolicy::VraPolicy(const vra::Vra& vra, double switch_hysteresis)
    : vra_(vra), hysteresis_(switch_hysteresis) {
  require(!(switch_hysteresis < 0.0 || switch_hysteresis >= 1.0),
      "VraPolicy: hysteresis outside [0, 1)");
}

std::optional<Selection> VraPolicy::select(NodeId home, VideoId video) {
  const auto decision = vra_.select_server(home, video);
  if (!decision) return std::nullopt;
  if (decision->served_locally || hysteresis_ == 0.0) {
    last_choice_[{home, video}] = decision->server;
    return Selection{decision->server, decision->path};
  }

  // Sticky choice: switch away from the previous source only when the new
  // best is cheaper than staying by more than the hysteresis margin.
  const auto key = std::make_pair(home, video);
  const auto it = last_choice_.find(key);
  if (it != last_choice_.end() && it->second != decision->server) {
    for (const vra::Candidate& candidate : decision->candidates) {
      if (candidate.server != it->second) continue;
      const double stay_cost = candidate.path.cost;
      if (decision->path.cost >= (1.0 - hysteresis_) * stay_cost) {
        return Selection{candidate.server, candidate.path};
      }
      break;
    }
  }
  last_choice_[key] = decision->server;
  return Selection{decision->server, decision->path};
}

}  // namespace vod::stream
