// The service database module.
//
// One in-process store with the paper's two conceptual sub-modules:
//   * FullAccessView   — what the user-facing web module may read: the video
//                        catalog and which servers offer which title.
//   * LimitedAccessView — what administrators, the SNMP module and the VRA
//                        may read and write: link bandwidth statistics and
//                        server configuration.
// A LimitedAccessView can only be obtained with the AdminCredential the
// database was created with, mirroring the paper's access restriction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/units.h"
#include "db/records.h"

namespace vod::db {

/// Opaque administrator credential.
struct AdminCredential {
  std::string secret;

  friend bool operator==(const AdminCredential&,
                         const AdminCredential&) = default;
};

class FullAccessView;
class LimitedAccessView;

/// The shared data store.  Single-writer discrete-event use; not
/// thread-safe by design (the simulator is single-threaded and
/// deterministic).
class Database {
 public:
  explicit Database(AdminCredential admin);

  /// Registers a title in the global catalog.
  VideoId register_video(std::string title, MegaBytes size, Mbps bitrate);

  /// Registers a server entry (one per network node hosting a video
  /// server).  Duplicate ids throw.
  void register_server(NodeId node, std::string name, ServerConfig config);

  /// Registers a link entry with its admin-provided total bandwidth.
  void register_link(LinkId link, std::string name, Mbps total_bandwidth);

  /// Read-only catalog access for the user-facing web module.
  [[nodiscard]] FullAccessView full_view() const;

  /// Privileged access; throws std::invalid_argument on credential
  /// mismatch.
  LimitedAccessView limited_view(const AdminCredential& credential);

  // --- change epochs (the incremental VRA's invalidation signal) ---
  //
  // Every limited-access mutation advances change_epoch(); mutations that
  // change a link's VRA-relevant state (statistics or online flag) also
  // advance links_changed_epoch() and stamp the link's record.  A reader
  // that cached derived state at epoch E knows:
  //   * links_changed_epoch() <= E  -> its weighted graph is still valid;
  //   * otherwise the dirty links are exactly those with
  //     last_changed_epoch > E.
  // Writes that do not change any stored value (e.g. SNMP re-reporting
  // identical counters) bump nothing, so "dirty" means "actually changed".

  /// Monotonic counter of effective limited-access writes.
  [[nodiscard]] std::uint64_t change_epoch() const { return change_epoch_; }

  /// change_epoch() value of the last effective link-state write.
  [[nodiscard]] std::uint64_t links_changed_epoch() const {
    return links_changed_epoch_;
  }

 private:
  friend class FullAccessView;
  friend class LimitedAccessView;

  /// Bumps and returns the global epoch (an effective non-link write).
  std::uint64_t bump_epoch() { return ++change_epoch_; }
  /// Bumps the global epoch and marks it as a link-state change.
  std::uint64_t bump_link_epoch() {
    return links_changed_epoch_ = ++change_epoch_;
  }

  AdminCredential admin_;
  std::map<VideoId, VideoInfo> videos_;
  std::map<NodeId, ServerRecord> servers_;
  std::map<LinkId, LinkRecord> links_;
  VideoId::underlying_type next_video_ = 0;
  std::uint64_t change_epoch_ = 0;
  std::uint64_t links_changed_epoch_ = 0;
};

/// User-level read access: catalog browsing and title lookup.
class FullAccessView {
 public:
  [[nodiscard]] std::vector<VideoInfo> list_videos() const;
  [[nodiscard]] std::optional<VideoInfo> video(VideoId id) const;
  [[nodiscard]] std::optional<VideoInfo> find_by_title(
      const std::string& title) const;

  /// Servers whose full-access entry lists `video` (candidate sources).
  [[nodiscard]] std::vector<NodeId> servers_with_title(VideoId video) const;

  /// Case-sensitive substring search over titles.
  [[nodiscard]] std::vector<VideoInfo> search(
      const std::string& needle) const;

  [[nodiscard]] std::size_t video_count() const {
    return db_->videos_.size();
  }

 private:
  friend class Database;
  explicit FullAccessView(const Database* db) : db_(db) {}
  const Database* db_;
};

/// Administrator/VRA/SNMP access: network statistics and configuration.
class LimitedAccessView {
 public:
  // --- link statistics (written by the SNMP module, read by the VRA) ---
  void update_link_stats(LinkId link, Mbps used, double utilization,
                         SimTime when);
  /// Marks a link reachable/unreachable (written by the SNMP module when a
  /// poll detects a failure, or by an administrator).
  void set_link_online(LinkId link, bool online);
  [[nodiscard]] const LinkRecord& link(LinkId link) const;
  [[nodiscard]] std::vector<LinkRecord> links() const;

  // --- server configuration and placement ---
  [[nodiscard]] const ServerRecord& server(NodeId node) const;
  [[nodiscard]] std::vector<ServerRecord> servers() const;
  void set_server_config(NodeId node, ServerConfig config);
  void set_server_online(NodeId node, bool online);
  /// Records that `node` now holds (or no longer holds) a copy of `video`;
  /// these are the writes the DMA performs when it caches or evicts.
  void add_title(NodeId node, VideoId video);
  void remove_title(NodeId node, VideoId video);

  /// Staleness of a link's statistics relative to `now`.
  [[nodiscard]] double stats_age(LinkId link, SimTime now) const;

  // --- change epochs (see Database) ---
  [[nodiscard]] std::uint64_t change_epoch() const {
    return db_->change_epoch();
  }
  [[nodiscard]] std::uint64_t links_changed_epoch() const {
    return db_->links_changed_epoch();
  }

 private:
  friend class Database;
  explicit LimitedAccessView(Database* db) : db_(db) {}
  Database* db_;
};

}  // namespace vod::db
