#include "db/database.h"

#include <stdexcept>
#include <utility>

#include "common/contract.h"

namespace vod::db {

Database::Database(AdminCredential admin) : admin_(std::move(admin)) {
  require(!admin_.secret.empty(), "Database: admin secret must be non-empty");
}

VideoId Database::register_video(std::string title, MegaBytes size,
                                 Mbps bitrate) {
  require(!title.empty(), "register_video: empty title");
  require(!(size.value() <= 0.0), "register_video: size must be positive");
  require(!(bitrate.value() <= 0.0),
      "register_video: bitrate must be positive");
  const VideoId id{next_video_++};
  videos_.emplace(id, VideoInfo{id, std::move(title), size, bitrate});
  return id;
}

void Database::register_server(NodeId node, std::string name,
                               ServerConfig config) {
  require(node.valid(), "register_server: invalid node");
  require(!servers_.contains(node), "register_server: duplicate server entry");
  ServerRecord record;
  record.id = node;
  record.name = std::move(name);
  record.config = config;
  servers_.emplace(node, std::move(record));
}

void Database::register_link(LinkId link, std::string name,
                             Mbps total_bandwidth) {
  require(link.valid(), "register_link: invalid link");
  require(!links_.contains(link), "register_link: duplicate link entry");
  require(!(total_bandwidth.value() <= 0.0),
      "register_link: bandwidth must be positive");
  LinkRecord record;
  record.id = link;
  record.name = std::move(name);
  record.total_bandwidth = total_bandwidth;
  links_.emplace(link, std::move(record));
}

FullAccessView Database::full_view() const { return FullAccessView{this}; }

LimitedAccessView Database::limited_view(const AdminCredential& credential) {
  require(credential == admin_, "limited_view: bad admin credential");
  return LimitedAccessView{this};
}

// --- FullAccessView ---

std::vector<VideoInfo> FullAccessView::list_videos() const {
  std::vector<VideoInfo> out;
  out.reserve(db_->videos_.size());
  for (const auto& [id, info] : db_->videos_) out.push_back(info);
  return out;
}

std::optional<VideoInfo> FullAccessView::video(VideoId id) const {
  const auto it = db_->videos_.find(id);
  if (it == db_->videos_.end()) return std::nullopt;
  return it->second;
}

std::optional<VideoInfo> FullAccessView::find_by_title(
    const std::string& title) const {
  for (const auto& [id, info] : db_->videos_) {
    if (info.title == title) return info;
  }
  return std::nullopt;
}

std::vector<NodeId> FullAccessView::servers_with_title(VideoId video) const {
  std::vector<NodeId> out;
  for (const auto& [node, record] : db_->servers_) {
    if (record.titles.contains(video)) out.push_back(node);
  }
  return out;
}

std::vector<VideoInfo> FullAccessView::search(
    const std::string& needle) const {
  std::vector<VideoInfo> out;
  for (const auto& [id, info] : db_->videos_) {
    if (info.title.find(needle) != std::string::npos) out.push_back(info);
  }
  return out;
}

// --- LimitedAccessView ---

namespace {
template <typename Map, typename Key>
auto& find_or_throw(Map& map, Key key, const char* what) {
  const auto it = map.find(key);
  require_found(it != map.end(), what);
  return it->second;
}
}  // namespace

void LimitedAccessView::update_link_stats(LinkId link, Mbps used,
                                          double utilization, SimTime when) {
  require(!(used.value() < 0.0 || utilization < 0.0 || utilization > 1.0),
      "update_link_stats: bad statistics");
  auto& record =
      find_or_throw(db_->links_, link, "update_link_stats: unknown link");
  // SNMP re-reporting identical counters refreshes the staleness clock but
  // is not a change: the epoch (and the link's dirty stamp) move only when
  // a VRA-relevant value actually differs.
  if (record.used_bandwidth.value() != used.value() ||
      record.utilization != utilization) {
    record.used_bandwidth = used;
    record.utilization = utilization;
    record.last_changed_epoch = db_->bump_link_epoch();
  }
  record.last_snmp_update = when;
}

void LimitedAccessView::set_link_online(LinkId link, bool online) {
  auto& record =
      find_or_throw(db_->links_, link, "set_link_online: unknown link");
  if (record.online == online) return;
  record.online = online;
  record.last_changed_epoch = db_->bump_link_epoch();
}

const LinkRecord& LimitedAccessView::link(LinkId link) const {
  return find_or_throw(db_->links_, link, "link: unknown link");
}

std::vector<LinkRecord> LimitedAccessView::links() const {
  std::vector<LinkRecord> out;
  out.reserve(db_->links_.size());
  for (const auto& [id, record] : db_->links_) out.push_back(record);
  return out;
}

const ServerRecord& LimitedAccessView::server(NodeId node) const {
  return find_or_throw(db_->servers_, node, "server: unknown server");
}

std::vector<ServerRecord> LimitedAccessView::servers() const {
  std::vector<ServerRecord> out;
  out.reserve(db_->servers_.size());
  for (const auto& [id, record] : db_->servers_) out.push_back(record);
  return out;
}

void LimitedAccessView::set_server_config(NodeId node, ServerConfig config) {
  find_or_throw(db_->servers_, node, "set_server_config: unknown server")
      .config = config;
  db_->bump_epoch();
}

void LimitedAccessView::set_server_online(NodeId node, bool online) {
  auto& record =
      find_or_throw(db_->servers_, node, "set_server_online: unknown server");
  if (record.online == online) return;
  record.online = online;
  db_->bump_epoch();
}

void LimitedAccessView::add_title(NodeId node, VideoId video) {
  require(!(!db_->videos_.contains(video)), "add_title: unknown video");
  if (find_or_throw(db_->servers_, node, "add_title: unknown server")
          .titles.insert(video)
          .second) {
    db_->bump_epoch();
  }
}

void LimitedAccessView::remove_title(NodeId node, VideoId video) {
  if (find_or_throw(db_->servers_, node, "remove_title: unknown server")
          .titles.erase(video) > 0) {
    db_->bump_epoch();
  }
}

double LimitedAccessView::stats_age(LinkId link, SimTime now) const {
  const auto& record =
      find_or_throw(db_->links_, link, "stats_age: unknown link");
  return now - record.last_snmp_update;
}

}  // namespace vod::db
