// Record types stored in the service database.
//
// The paper's database holds one entry per server and per link, each split
// into a full-access part (what any user may see: the title catalog) and a
// limited-access part (network/configuration state only administrators and
// the VRA may read).  These structs are those entries.
#pragma once

#include <set>
#include <string>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/units.h"

namespace vod::db {

/// A video title in the catalog.
struct VideoInfo {
  VideoId id;
  std::string title;
  MegaBytes size;
  Mbps bitrate;  // encoding rate required for real-time playback

  /// Playback duration implied by size and bitrate.
  [[nodiscard]] double duration_seconds() const {
    return size.megabits() / bitrate.value();
  }
};

/// Limited-access configuration of a video server (entered by the
/// administrators during service initialization).
struct ServerConfig {
  int disk_count = 0;
  MegaBytes disk_capacity;   // per disk
  Mbps access_bandwidth;     // the server's connection to the network
  // Future-work extension: server performance factors (paper, "Conclusions").
  double cpu_load = 0.0;     // 0..1
  double ram_load = 0.0;     // 0..1
};

/// One server's database entry.
struct ServerRecord {
  NodeId id;
  std::string name;
  std::set<VideoId> titles;  // full-access: titles this server can provide
  ServerConfig config;       // limited-access
  bool online = true;        // limited-access: can it serve right now?
};

/// One link's database entry.
struct LinkRecord {
  LinkId id;
  std::string name;
  Mbps total_bandwidth;          // limited-access, admin-entered (eq. 2 LBW)
  Mbps used_bandwidth;           // limited-access, SNMP-entered (eq. 2 UBW)
  double utilization = 0.0;      // limited-access, SNMP-entered (eq. 3 LT)
  bool online = true;            // limited-access: false after a link failure
  SimTime last_snmp_update{0.0};
  /// Database::change_epoch() value of the last write that actually changed
  /// this link's VRA-relevant state (used/utilization/online).  Lets the
  /// VRA's incremental engine find the dirty links since its cached build.
  std::uint64_t last_changed_epoch = 0;
};

}  // namespace vod::db
