// Deterministic fault injection against a running VodService.
//
// Faults are scheduled either by script (*_at methods) or by a seeded
// renewal process (schedule_random): every link, server and disk gets an
// alternating sequence of exponential up-times (MTBF) and repair times
// (MTTR), pre-generated from one Rng so a seed reproduces the exact same
// storm.  Each applied fault is appended to a trace, in execution order,
// for assertions and post-mortems.
//
// The injector only *causes* faults; the recovery machinery it exercises
// lives in the service layer (proactive session failover, service-level
// retries, the VRA's degraded mode) and in the sessions' stall watchdogs.
//
// Ordering guarantee: faults scheduled for the same instant apply in the
// order they were scheduled (EventQueue breaks timestamp ties by sequence
// number), so a cut_link_at/restore_link_at pair at the same time nets out
// to "restored" and the trace records both, in that order.  Together with
// the pre-generated random schedule this makes the whole storm a pure
// function of (options, seed) — the determinism tests assert it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "service/vod_service.h"
#include "sim/simulation.h"

namespace vod::fault {

enum class FaultKind {
  kLinkCut,
  kLinkRestore,
  kServerCrash,
  kServerRestore,
  kDiskFailure,
  kSnmpOutage,
  kSnmpRestore,
};

const char* to_string(FaultKind kind);

/// One applied fault.  `target` is the link/server id (unused for the SNMP
/// kinds); `detail` is the disk slot for kDiskFailure.
struct FaultRecord {
  SimTime at{0.0};
  FaultKind kind = FaultKind::kLinkCut;
  std::uint32_t target = 0;
  std::size_t detail = 0;

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

/// MTBF/MTTR knobs of the random schedule; infinity disables a fault
/// class.  Disks are never repaired (a failed disk stays failed).
struct FaultScheduleOptions {
  double horizon_seconds = 3600.0;
  double link_mtbf_seconds = std::numeric_limits<double>::infinity();
  double link_mttr_seconds = 300.0;
  double server_mtbf_seconds = std::numeric_limits<double>::infinity();
  double server_mttr_seconds = 600.0;
  double disk_mtbf_seconds = std::numeric_limits<double>::infinity();
  double snmp_mtbf_seconds = std::numeric_limits<double>::infinity();
  double snmp_mttr_seconds = 300.0;
};

class FaultInjector {
 public:
  /// Both references must outlive the injector.
  FaultInjector(sim::Simulation& sim, service::VodService& service);

  // ---- scripted faults ----

  void cut_link_at(SimTime at, LinkId link);
  void restore_link_at(SimTime at, LinkId link);
  void crash_server_at(SimTime at, NodeId server);
  void restore_server_at(SimTime at, NodeId server);
  void fail_disk_at(SimTime at, NodeId server, std::size_t slot);
  void snmp_outage_at(SimTime at);
  void snmp_restore_at(SimTime at);

  // ---- seeded random schedule ----

  /// Pre-generates the whole storm from `seed` and schedules it.  Repairs
  /// begun before the horizon complete even past it, so the network always
  /// heals and a drain period can finish the surviving sessions.
  void schedule_random(const FaultScheduleOptions& options,
                       std::uint64_t seed);

  /// Applied faults, in execution order.
  [[nodiscard]] const std::vector<FaultRecord>& trace() const {
    return trace_;
  }
  [[nodiscard]] std::size_t count(FaultKind kind) const;

 private:
  void schedule(SimTime at, FaultRecord record);
  void apply(const FaultRecord& record, SimTime now);
  [[nodiscard]] std::size_t disk_count_of(NodeId server) const;

  sim::Simulation& sim_;
  service::VodService& service_;
  std::vector<FaultRecord> trace_;
};

}  // namespace vod::fault
