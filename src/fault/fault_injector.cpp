#include "fault/fault_injector.h"

#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace vod::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkCut: return "link-cut";
    case FaultKind::kLinkRestore: return "link-restore";
    case FaultKind::kServerCrash: return "server-crash";
    case FaultKind::kServerRestore: return "server-restore";
    case FaultKind::kDiskFailure: return "disk-failure";
    case FaultKind::kSnmpOutage: return "snmp-outage";
    case FaultKind::kSnmpRestore: return "snmp-restore";
  }
  return "unknown";
}

FaultInjector::FaultInjector(sim::Simulation& sim,
                             service::VodService& service)
    : sim_(sim), service_(service) {}

void FaultInjector::cut_link_at(SimTime at, LinkId link) {
  schedule(at, FaultRecord{at, FaultKind::kLinkCut, link.value(), 0});
}

void FaultInjector::restore_link_at(SimTime at, LinkId link) {
  schedule(at, FaultRecord{at, FaultKind::kLinkRestore, link.value(), 0});
}

void FaultInjector::crash_server_at(SimTime at, NodeId server) {
  schedule(at, FaultRecord{at, FaultKind::kServerCrash, server.value(), 0});
}

void FaultInjector::restore_server_at(SimTime at, NodeId server) {
  schedule(at,
           FaultRecord{at, FaultKind::kServerRestore, server.value(), 0});
}

void FaultInjector::fail_disk_at(SimTime at, NodeId server,
                                 std::size_t slot) {
  schedule(at, FaultRecord{at, FaultKind::kDiskFailure, server.value(), slot});
}

void FaultInjector::snmp_outage_at(SimTime at) {
  schedule(at, FaultRecord{at, FaultKind::kSnmpOutage, 0, 0});
}

void FaultInjector::snmp_restore_at(SimTime at) {
  schedule(at, FaultRecord{at, FaultKind::kSnmpRestore, 0, 0});
}

std::size_t FaultInjector::disk_count_of(NodeId server) const {
  const service::ServiceOptions& options = service_.options();
  const auto it = options.server_overrides.find(server);
  return it != options.server_overrides.end() ? it->second.disk_count
                                              : options.server.disk_count;
}

void FaultInjector::schedule_random(const FaultScheduleOptions& options,
                                    std::uint64_t seed) {
  Rng rng{seed};
  const SimTime base = sim_.now();
  const double horizon = options.horizon_seconds;

  // Links: alternating exponential up/down renewal per link, in topology
  // order so the schedule is a pure function of (topology, options, seed).
  if (std::isfinite(options.link_mtbf_seconds)) {
    for (const net::LinkInfo& info : service_.topology().links()) {
      double t = rng.exponential(1.0 / options.link_mtbf_seconds);
      while (t < horizon) {
        cut_link_at(base + t, info.id);
        const double repair =
            t + rng.exponential(1.0 / options.link_mttr_seconds);
        restore_link_at(base + repair, info.id);
        t = repair + rng.exponential(1.0 / options.link_mtbf_seconds);
      }
    }
  }

  // Servers: same renewal shape, node order.
  if (std::isfinite(options.server_mtbf_seconds)) {
    for (std::size_t n = 0; n < service_.topology().node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      double t = rng.exponential(1.0 / options.server_mtbf_seconds);
      while (t < horizon) {
        crash_server_at(base + t, node);
        const double repair =
            t + rng.exponential(1.0 / options.server_mttr_seconds);
        restore_server_at(base + repair, node);
        t = repair + rng.exponential(1.0 / options.server_mtbf_seconds);
      }
    }
  }

  // Disks: at most one failure per server (no repair), random slot.
  if (std::isfinite(options.disk_mtbf_seconds)) {
    for (std::size_t n = 0; n < service_.topology().node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      const double t = rng.exponential(1.0 / options.disk_mtbf_seconds);
      const std::size_t disks = disk_count_of(node);
      if (t >= horizon || disks == 0) continue;
      const auto slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(disks) - 1));
      fail_disk_at(base + t, node, slot);
    }
  }

  // The monitor itself: one renewal process.
  if (std::isfinite(options.snmp_mtbf_seconds)) {
    double t = rng.exponential(1.0 / options.snmp_mtbf_seconds);
    while (t < horizon) {
      snmp_outage_at(base + t);
      const double repair =
          t + rng.exponential(1.0 / options.snmp_mttr_seconds);
      snmp_restore_at(base + repair);
      t = repair + rng.exponential(1.0 / options.snmp_mtbf_seconds);
    }
  }
}

std::size_t FaultInjector::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const FaultRecord& record : trace_) {
    if (record.kind == kind) ++n;
  }
  return n;
}

void FaultInjector::schedule(SimTime at, FaultRecord record) {
  sim_.schedule_at(at, [this, record](SimTime now) { apply(record, now); });
}

void FaultInjector::apply(const FaultRecord& record, SimTime now) {
  VOD_LOG_INFO("fault: " << to_string(record.kind) << " target "
                         << record.target << " at " << now.seconds());
  if (obs::TraceRecorder* tr = obs::trace_sink()) {
    tr->instant(
        obs::Subsystem::kFault,
        std::string{"fault."} + to_string(record.kind),
        {{"target", obs::num(static_cast<std::uint64_t>(record.target))},
         {"detail", obs::num(static_cast<std::uint64_t>(record.detail))}});
  }
  // Destructive faults fire the black box (restores are recoveries, not
  // anomalies); the recorder's min_gap turns a storm into a few dumps.
  switch (record.kind) {
    case FaultKind::kLinkCut:
    case FaultKind::kServerCrash:
    case FaultKind::kDiskFailure:
    case FaultKind::kSnmpOutage:
      if (obs::FlightRecorder* fr = obs::flight_recorder()) {
        fr->trigger(std::string{"fault."} + to_string(record.kind));
      }
      break;
    default:
      break;
  }
  switch (record.kind) {
    case FaultKind::kLinkCut:
      service_.fail_link(LinkId{record.target});
      break;
    case FaultKind::kLinkRestore:
      service_.restore_link(LinkId{record.target});
      break;
    case FaultKind::kServerCrash:
      service_.crash_server(NodeId{record.target});
      break;
    case FaultKind::kServerRestore:
      service_.restore_server(NodeId{record.target});
      break;
    case FaultKind::kDiskFailure:
      (void)service_.fail_disk(NodeId{record.target}, record.detail);
      break;
    case FaultKind::kSnmpOutage:
      service_.snmp().stop();
      break;
    case FaultKind::kSnmpRestore:
      service_.snmp().start();
      break;
  }
  trace_.push_back(record);
}

}  // namespace vod::fault
