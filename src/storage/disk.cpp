#include "storage/disk.h"

#include <stdexcept>

#include "common/contract.h"

namespace vod::storage {

Disk::Disk(DiskId id, DiskProfile profile) : id_(id), profile_(profile) {
  require(id.valid(), "Disk: invalid id");
  require(
      !(profile.capacity.value() <= 0.0 || profile.transfer_rate.value() <= 0.0 || profile.seek_seconds < 0.0),
      "Disk: bad profile");
}

void Disk::store_part(VideoId video, std::size_t part_index, MegaBytes size) {
  require(!(size.value() <= 0.0), "Disk::store_part: size must be positive");
  require(can_fit(size), "Disk::store_part: does not fit");
  auto& video_parts = parts_[video];
  require(!video_parts.contains(part_index),
      "Disk::store_part: duplicate part");
  video_parts.emplace(part_index, size);
  used_ += size;
}

MegaBytes Disk::remove_video(VideoId video) {
  const auto it = parts_.find(video);
  if (it == parts_.end()) return MegaBytes{0.0};
  MegaBytes freed{0.0};
  for (const auto& [index, size] : it->second) freed += size;
  parts_.erase(it);
  used_ -= freed;
  return freed;
}

std::vector<std::size_t> Disk::parts_of(VideoId video) const {
  std::vector<std::size_t> out;
  const auto it = parts_.find(video);
  if (it == parts_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [index, size] : it->second) out.push_back(index);
  return out;
}

std::size_t Disk::stored_part_count() const {
  std::size_t count = 0;
  for (const auto& [video, video_parts] : parts_) {
    count += video_parts.size();
  }
  return count;
}

double Disk::read_seconds(MegaBytes amount) const {
  require(!(amount.value() < 0.0), "Disk::read_seconds: negative amount");
  return profile_.seek_seconds +
         amount.megabits() / profile_.transfer_rate.value();
}

}  // namespace vod::storage
