#include "storage/disk_array.h"

#include <algorithm>

#include <stdexcept>

#include "common/contract.h"

namespace vod::storage {

DiskArray::DiskArray(std::size_t disk_count, DiskProfile profile,
                     MegaBytes cluster, StripingMode mode)
    : mode_(mode), failed_(disk_count, false), cluster_(cluster) {
  require(disk_count != 0, "DiskArray: need at least one disk");
  require(!(mode == StripingMode::kParity && disk_count < 2),
      "DiskArray: parity needs >= 2 disks");
  require(!(cluster.value() <= 0.0), "DiskArray: cluster must be positive");
  disks_.reserve(disk_count);
  for (std::size_t slot = 0; slot < disk_count; ++slot) {
    disks_.emplace_back(DiskId{static_cast<DiskId::underlying_type>(slot)},
                        profile);
  }
}

std::vector<std::size_t> DiskArray::healthy_slots() const {
  std::vector<std::size_t> out;
  for (std::size_t slot = 0; slot < disks_.size(); ++slot) {
    if (!failed_[slot]) out.push_back(slot);
  }
  return out;
}

bool DiskArray::disk_failed(std::size_t slot) const {
  require_found(!(slot >= disks_.size()), "DiskArray::disk_failed: bad slot");
  return failed_[slot];
}

std::size_t DiskArray::healthy_disk_count() const {
  return healthy_slots().size();
}

bool DiskArray::recoverable(const StripePlacement& placement) const {
  if (!placement.has_parity()) {
    // Plain layout: any part on a failed disk is fatal.
    for (const std::size_t slot : placement.part_to_disk) {
      if (failed_[slot]) return false;
    }
    return true;
  }
  // Parity layout: a row survives while it misses at most one member
  // (data or parity).
  for (std::size_t row = 0; row < placement.row_count(); ++row) {
    int missing = failed_[placement.parity_to_disk[row]] ? 1 : 0;
    for (std::size_t j = 0; j < placement.row_width; ++j) {
      const std::size_t part = row * placement.row_width + j;
      if (part >= placement.part_count()) break;
      if (failed_[placement.part_to_disk[part]]) ++missing;
    }
    if (missing > 1) return false;
  }
  return true;
}

std::vector<VideoId> DiskArray::fail_disk(std::size_t slot) {
  require_found(!(slot >= disks_.size()), "DiskArray::fail_disk: bad slot");
  if (failed_[slot]) return {};
  failed_[slot] = true;
  std::vector<VideoId> lost;
  for (const auto& [video, placement] : placements_) {
    if (!recoverable(placement)) lost.push_back(video);
  }
  for (const VideoId video : lost) remove(video);
  return lost;
}

bool DiskArray::readable(VideoId video) const {
  const auto it = placements_.find(video);
  return it != placements_.end() && recoverable(it->second);
}

void DiskArray::repair_disk(std::size_t slot) {
  require_found(!(slot >= disks_.size()), "DiskArray::repair_disk: bad slot");
  failed_[slot] = false;
}

const Disk& DiskArray::disk(std::size_t slot) const {
  require_found(!(slot >= disks_.size()), "DiskArray::disk: bad slot");
  return disks_[slot];
}

bool DiskArray::can_tolerate(MegaBytes size) const {
  if (size.value() <= 0.0) return false;
  const std::vector<std::size_t> healthy = healthy_slots();
  if (healthy.empty()) return false;
  if (mode_ == StripingMode::kParity && healthy.size() < 2) return false;
  // Plan the layout over the surviving disks and check their free space.
  const StripePlacement plan =
      mode_ == StripingMode::kParity
          ? plan_parity_striping(VideoId{0}, size, cluster_, healthy.size())
          : plan_striping(VideoId{0} /* probe id */, size, cluster_,
                          healthy.size());
  const std::vector<MegaBytes> per_disk = plan.per_disk_bytes(healthy.size());
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    if (!disks_[healthy[i]].can_fit(per_disk[i])) return false;
  }
  return true;
}

std::optional<StripePlacement> DiskArray::store(VideoId video,
                                                MegaBytes size) {
  require(!holds(video), "DiskArray::store: video already stored");
  if (!can_tolerate(size)) return std::nullopt;
  const std::vector<std::size_t> healthy = healthy_slots();
  StripePlacement placement =
      mode_ == StripingMode::kParity
          ? plan_parity_striping(video, size, cluster_, healthy.size())
          : plan_striping(video, size, cluster_, healthy.size());
  // The plan is over logical (healthy) slots; persist physical slots.
  for (std::size_t& slot : placement.part_to_disk) slot = healthy[slot];
  for (std::size_t& slot : placement.parity_to_disk) slot = healthy[slot];
  for (std::size_t part = 0; part < placement.part_count(); ++part) {
    disks_[placement.part_to_disk[part]].store_part(
        video, part, placement.part_sizes[part]);
  }
  for (std::size_t row = 0; row < placement.row_count(); ++row) {
    disks_[placement.parity_to_disk[row]].store_part(
        video, parity_part_index(row), placement.parity_sizes[row]);
  }
  const auto [it, inserted] = placements_.emplace(video, placement);
  return it->second;
}

MegaBytes DiskArray::remove(VideoId video) {
  if (placements_.erase(video) == 0) return MegaBytes{0.0};
  MegaBytes freed{0.0};
  for (Disk& disk : disks_) freed += disk.remove_video(video);
  return freed;
}

const StripePlacement& DiskArray::placement(VideoId video) const {
  const auto it = placements_.find(video);
  require_found(it != placements_.end(),
      "DiskArray::placement: video not stored");
  return it->second;
}

std::vector<VideoId> DiskArray::stored_videos() const {
  std::vector<VideoId> out;
  out.reserve(placements_.size());
  for (const auto& [video, placement] : placements_) out.push_back(video);
  return out;
}

MegaBytes DiskArray::total_capacity() const {
  MegaBytes total{0.0};
  for (const Disk& disk : disks_) total += disk.capacity();
  return total;
}

MegaBytes DiskArray::total_used() const {
  MegaBytes total{0.0};
  for (const Disk& disk : disks_) total += disk.used();
  return total;
}

double DiskArray::cluster_read_seconds(VideoId video,
                                       std::size_t part_index) const {
  const StripePlacement& placement = this->placement(video);
  require_found(!(part_index >= placement.part_count()),
      "DiskArray::cluster_read_seconds: bad part");
  const std::size_t slot = placement.part_to_disk[part_index];
  if (!failed_[slot]) {
    return disks_[slot].read_seconds(placement.part_sizes[part_index]);
  }
  ensure(!(!placement.has_parity() || !recoverable(placement)),
      "DiskArray::cluster_read_seconds: cluster unreadable");
  // Degraded read: reconstruct from the row's survivors, which sit on
  // distinct disks and read in parallel — latency is the slowest member.
  const std::size_t row = part_index / placement.row_width;
  double slowest = disks_[placement.parity_to_disk[row]].read_seconds(
      placement.parity_sizes[row]);
  for (std::size_t j = 0; j < placement.row_width; ++j) {
    const std::size_t part = row * placement.row_width + j;
    if (part >= placement.part_count()) break;
    if (part == part_index) continue;
    slowest = std::max(slowest,
                       disks_[placement.part_to_disk[part]].read_seconds(
                           placement.part_sizes[part]));
  }
  return slowest;
}

}  // namespace vod::storage
