// A single simulated disk.
//
// Tracks capacity and the striped video parts stored on it, and models
// read latency as seek + transfer — enough to study the layout and
// load-balance properties of the paper's striping scheme (Figure 3).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace vod::storage {

/// Throughput/latency parameters of a disk.
struct DiskProfile {
  MegaBytes capacity{9000.0};       // ~9 GB, a period-correct SCSI disk
  Mbps transfer_rate{80.0};         // sustained read rate (10 MB/s)
  double seek_seconds = 0.009;      // average seek + rotational delay
};

/// One disk: capacity bookkeeping plus the (video, part index, size)
/// records of every stripe stored on it.
class Disk {
 public:
  Disk(DiskId id, DiskProfile profile);

  [[nodiscard]] DiskId id() const { return id_; }
  [[nodiscard]] const DiskProfile& profile() const { return profile_; }
  [[nodiscard]] MegaBytes capacity() const { return profile_.capacity; }
  [[nodiscard]] MegaBytes used() const { return used_; }
  [[nodiscard]] MegaBytes free() const { return capacity() - used_; }

  [[nodiscard]] bool can_fit(MegaBytes size) const {
    return size.value() <= free().value() + 1e-9;
  }

  /// Stores part `part_index` of `video`; throws if it does not fit or the
  /// same part is already present.
  void store_part(VideoId video, std::size_t part_index, MegaBytes size);

  /// Removes every part of `video`; returns the bytes freed.
  MegaBytes remove_video(VideoId video);

  /// Part indices of `video` held on this disk (sorted ascending).
  [[nodiscard]] std::vector<std::size_t> parts_of(VideoId video) const;

  [[nodiscard]] bool holds_any_part(VideoId video) const {
    return parts_.contains(video);
  }

  [[nodiscard]] std::size_t stored_part_count() const;

  /// Time to read `amount` from this disk: one seek plus transfer.
  [[nodiscard]] double read_seconds(MegaBytes amount) const;

 private:
  DiskId id_;
  DiskProfile profile_;
  MegaBytes used_{0.0};
  // video -> (part index -> size)
  std::map<VideoId, std::map<std::size_t, MegaBytes>> parts_;
};

}  // namespace vod::storage
