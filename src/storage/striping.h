// Capacity-oriented data striping (the paper's DMA storage scheme,
// Figure 3).
//
// A fixed, array-wide cluster size `c` splits each video into
// p = ceil(size / c) parts distributed cyclically over the n disks:
//   * n > p : one part on each of the first p disks
//   * n <= p: parts wrap around, part i landing on disk (i mod n)
// Both cases are the single rule "part i -> disk (i mod n)"; the paper
// spells them out separately and so do our tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace vod::storage {

/// The planned layout of one video across a disk array.
struct StripePlacement {
  VideoId video;
  MegaBytes cluster_size;
  /// part index -> disk slot (0-based position within the array).
  std::vector<std::size_t> part_to_disk;
  /// Size of each part: cluster_size except possibly the last.
  std::vector<MegaBytes> part_sizes;
  /// Parity clusters (RAID-5-style layout only): parity_to_disk[r] is the
  /// disk slot holding row r's parity; empty for the paper's plain layout.
  std::vector<std::size_t> parity_to_disk;
  /// Size of each parity cluster (the row's largest data part).
  std::vector<MegaBytes> parity_sizes;
  /// Data clusters per parity row (disk_count - 1); 0 for plain layouts.
  std::size_t row_width = 0;

  [[nodiscard]] std::size_t part_count() const {
    return part_to_disk.size();
  }
  [[nodiscard]] std::size_t row_count() const {
    return parity_to_disk.size();
  }
  [[nodiscard]] bool has_parity() const { return !parity_to_disk.empty(); }

  /// Total bytes across all parts (== the video size; parity excluded).
  [[nodiscard]] MegaBytes total_size() const;

  /// Bytes assigned to each disk slot, parity included (length =
  /// disk_count given to plan()).
  [[nodiscard]] std::vector<MegaBytes> per_disk_bytes(
      std::size_t disk_count) const;
};

/// Computes the cyclic layout for a video of `video_size` on `disk_count`
/// disks with cluster size `cluster`.  All arguments must be positive.
StripePlacement plan_striping(VideoId video, MegaBytes video_size,
                              MegaBytes cluster, std::size_t disk_count);

/// RAID-5-style layout: data parts fill rows of (disk_count - 1) clusters;
/// each row gets one parity cluster on a rotating disk (row r's parity on
/// slot (disk_count - 1 - r % disk_count) so parity doesn't pile onto one
/// spindle).  Needs >= 2 disks.  Survives any single-disk failure at a
/// capacity overhead of 1/(disk_count-1) and a reconstruction read cost.
/// This is the reliability extension the paper leaves to future work
/// (cf. its refs [3], [4]).
StripePlacement plan_parity_striping(VideoId video, MegaBytes video_size,
                                     MegaBytes cluster,
                                     std::size_t disk_count);

}  // namespace vod::storage
