#include "storage/striping.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contract.h"

namespace vod::storage {

MegaBytes StripePlacement::total_size() const {
  MegaBytes total{0.0};
  for (const MegaBytes size : part_sizes) total += size;
  return total;
}

std::vector<MegaBytes> StripePlacement::per_disk_bytes(
    std::size_t disk_count) const {
  std::vector<MegaBytes> out(disk_count, MegaBytes{0.0});
  for (std::size_t part = 0; part < part_to_disk.size(); ++part) {
    const std::size_t slot = part_to_disk[part];
    require(!(slot >= disk_count),
        "StripePlacement::per_disk_bytes: placement uses more disks");
    out[slot] += part_sizes[part];
  }
  for (std::size_t row = 0; row < parity_to_disk.size(); ++row) {
    const std::size_t slot = parity_to_disk[row];
    require(!(slot >= disk_count),
        "StripePlacement::per_disk_bytes: parity uses more disks");
    out[slot] += parity_sizes[row];
  }
  return out;
}

StripePlacement plan_striping(VideoId video, MegaBytes video_size,
                              MegaBytes cluster, std::size_t disk_count) {
  require(video.valid(), "plan_striping: invalid video");
  require(!(video_size.value() <= 0.0), "plan_striping: size must be positive");
  require(!(cluster.value() <= 0.0), "plan_striping: cluster must be positive");
  require(disk_count != 0, "plan_striping: need at least one disk");

  // p = ceil(size / c); the paper's p = size/c with the remainder forming a
  // short final part.
  const auto p = static_cast<std::size_t>(
      std::ceil(video_size.value() / cluster.value() - 1e-12));

  StripePlacement placement;
  placement.video = video;
  placement.cluster_size = cluster;
  placement.part_to_disk.reserve(p);
  placement.part_sizes.reserve(p);

  MegaBytes left = video_size;
  for (std::size_t part = 0; part < p; ++part) {
    placement.part_to_disk.push_back(part % disk_count);
    const MegaBytes this_part =
        left.value() >= cluster.value() ? cluster : left;
    placement.part_sizes.push_back(this_part);
    left -= this_part;
  }
  return placement;
}

StripePlacement plan_parity_striping(VideoId video, MegaBytes video_size,
                                     MegaBytes cluster,
                                     std::size_t disk_count) {
  require(!(disk_count < 2),
      "plan_parity_striping: parity needs at least two disks");
  // Start from the plain plan for sizes/validation, then redo placement
  // row by row around the rotating parity slot.
  StripePlacement placement =
      plan_striping(video, video_size, cluster, disk_count);
  const std::size_t row_width = disk_count - 1;
  placement.row_width = row_width;
  const std::size_t rows =
      (placement.part_count() + row_width - 1) / row_width;

  for (std::size_t part = 0; part < placement.part_count(); ++part) {
    const std::size_t row = part / row_width;
    const std::size_t position = part % row_width;
    const std::size_t parity_slot =
        disk_count - 1 - (row % disk_count);
    // Data slots are every slot except the parity one, ascending.
    const std::size_t slot =
        position < parity_slot ? position : position + 1;
    placement.part_to_disk[part] = slot;
    (void)rows;
  }
  placement.parity_to_disk.reserve(rows);
  placement.parity_sizes.reserve(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    placement.parity_to_disk.push_back(disk_count - 1 - (row % disk_count));
    // Parity is as large as the row's largest data cluster.
    MegaBytes largest{0.0};
    for (std::size_t j = 0; j < row_width; ++j) {
      const std::size_t part = row * row_width + j;
      if (part >= placement.part_count()) break;
      largest = std::max(largest, placement.part_sizes[part]);
    }
    placement.parity_sizes.push_back(largest);
  }
  return placement;
}

}  // namespace vod::storage
