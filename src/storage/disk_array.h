// A server's disk array: n homogeneous disks plus the striping bookkeeping.
//
// The DMA asks it two questions — "can the disks tolerate this video?" and
// "write / delete this video" — and the streaming layer asks for per-cluster
// read times.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "storage/disk.h"
#include "storage/striping.h"

namespace vod::storage {

/// How videos are laid out on the array.
enum class StripingMode {
  /// The paper's Figure 3: cyclic, no redundancy.  A disk failure loses
  /// every title with a part on the failed disk.
  kPlain,
  /// RAID-5-style rotated parity (the reliability extension the paper
  /// defers to future work; cf. refs [3], [4]).  Any single disk failure
  /// is survivable — reads reconstruct from the row's survivors — at a
  /// 1/(n-1) capacity overhead.  A second overlapping failure loses the
  /// titles whose rows miss two clusters.
  kParity,
};

/// A fixed-size array of disks sharing one cluster size, as in Figure 3.
class DiskArray {
 public:
  /// `disk_count` >= 1 disks with identical `profile` (>= 2 for kParity);
  /// `cluster` is the array-wide striping unit (the paper's c).
  DiskArray(std::size_t disk_count, DiskProfile profile, MegaBytes cluster,
            StripingMode mode = StripingMode::kPlain);

  [[nodiscard]] StripingMode mode() const { return mode_; }

  [[nodiscard]] std::size_t disk_count() const { return disks_.size(); }
  [[nodiscard]] MegaBytes cluster_size() const { return cluster_; }
  [[nodiscard]] const Disk& disk(std::size_t slot) const;

  /// Fails a disk: every video striped onto it is lost (removed from all
  /// disks) and returned.  Failing a failed disk returns empty.
  std::vector<VideoId> fail_disk(std::size_t slot);

  /// Brings a failed disk back.  In plain mode it returns empty (its
  /// contents died with it); in parity mode the surviving rows rebuild
  /// onto it, so previously-degraded titles read directly again.  No-op
  /// if it was healthy.
  void repair_disk(std::size_t slot);

  [[nodiscard]] bool disk_failed(std::size_t slot) const;
  [[nodiscard]] std::size_t healthy_disk_count() const;

  /// True if the cyclic layout of a `size` video fits in the current free
  /// space of every disk it would touch (Figure 2's "Disks can tolerate").
  [[nodiscard]] bool can_tolerate(MegaBytes size) const;

  /// Stores `video`, returning its placement; std::nullopt if it does not
  /// fit.  Storing an already-present video throws.
  std::optional<StripePlacement> store(VideoId video, MegaBytes size);

  /// Deletes `video` from every disk; returns bytes freed (0 if absent).
  MegaBytes remove(VideoId video);

  [[nodiscard]] bool holds(VideoId video) const {
    return placements_.contains(video);
  }
  [[nodiscard]] const StripePlacement& placement(VideoId video) const;
  [[nodiscard]] std::vector<VideoId> stored_videos() const;

  [[nodiscard]] MegaBytes total_capacity() const;
  [[nodiscard]] MegaBytes total_used() const;
  [[nodiscard]] MegaBytes total_free() const {
    return total_capacity() - total_used();
  }

  /// Seconds to read cluster `part_index` of `video`.  In parity mode a
  /// cluster whose disk failed is reconstructed from its row's survivors
  /// (they read in parallel on distinct disks, so latency is the slowest
  /// surviving member's read).
  [[nodiscard]] double cluster_read_seconds(VideoId video,
                                            std::size_t part_index) const;

  /// True when `video` is stored and every cluster is currently readable
  /// (directly or via parity reconstruction).
  [[nodiscard]] bool readable(VideoId video) const;

 private:
  /// Physical slots of the surviving disks, in order.
  [[nodiscard]] std::vector<std::size_t> healthy_slots() const;

  /// Whether the placement survives the current failure set.
  [[nodiscard]] bool recoverable(const StripePlacement& placement) const;

  /// Disk index used to file row r's parity cluster (offset so it cannot
  /// clash with data part indices).
  static std::size_t parity_part_index(std::size_t row) {
    return kParityIndexBase + row;
  }
  static constexpr std::size_t kParityIndexBase = 1u << 20;

  StripingMode mode_;
  std::vector<Disk> disks_;
  std::vector<bool> failed_;
  MegaBytes cluster_;
  std::map<VideoId, StripePlacement> placements_;
};

}  // namespace vod::storage
