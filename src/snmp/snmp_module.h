// The SNMP statistics module.
//
// Reproduces the paper's monitoring component: every 1–2 minutes ("a
// reasonable interval compromising between the mutation rate of network
// characteristics and the imposed overhead") it samples the used bandwidth
// and utilization of every link and inserts them into the limited-access
// database sub-module, where the VRA reads them.
//
// Because updates are periodic, the VRA always works from slightly stale
// data — the fidelity-relevant property the real SNMP deployment had, and
// one of the knobs the ablation benches turn.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "db/database.h"
#include "net/fluid.h"
#include "sim/simulation.h"

namespace vod::snmp {

/// Periodically copies link counters from the (simulated) network into the
/// database's limited-access view.
class SnmpModule {
 public:
  /// `interval` defaults to 90 s — the middle of the paper's
  /// "1–2 minutes".  References must outlive the module.  The network is
  /// taken mutably because each sample first advances its traffic clock to
  /// the poll instant (counters must reflect "now").
  SnmpModule(sim::Simulation& sim, net::FluidNetwork& network,
             db::LimitedAccessView view, Duration interval = Duration{90.0});

  /// When false, samples report only the background (non-VoD) traffic —
  /// modelling a deployment that accounts its own streams separately so
  /// the VRA does not penalize the very path it is using (see the
  /// route-flapping discussion in DESIGN.md).  Default true: the paper's
  /// SNMP counters measure everything.
  void set_count_vod_flows(bool count) { count_vod_flows_ = count; }
  [[nodiscard]] bool count_vod_flows() const { return count_vod_flows_; }

  /// Begins periodic polling (first sample lands one interval from now).
  void start();
  void stop();
  [[nodiscard]] bool running() const { return task_ && task_->running(); }

  /// Takes one sample immediately (used during service initialization so
  /// the VRA never sees all-zero statistics).
  void poll_now(SimTime now);

  [[nodiscard]] std::size_t poll_count() const { return poll_count_; }
  [[nodiscard]] double interval_seconds() const { return interval_.seconds(); }

  /// When the last sample was taken (nullopt before the first); lets the
  /// fault tooling assert a monitor outage and the resumption after it.
  [[nodiscard]] std::optional<SimTime> last_poll_at() const {
    return last_poll_at_;
  }

 private:
  void sample(SimTime now);

  /// One link's computed counters from the parallel phase of a sweep; the
  /// serial merge applies them to the database in link order.
  struct LinkReading {
    Mbps used{0.0};
    double utilization = 0.0;
    bool online = true;
  };

  sim::Simulation& sim_;
  net::FluidNetwork& network_;
  db::LimitedAccessView view_;
  Duration interval_;
  bool count_vod_flows_ = true;
  std::size_t poll_count_ = 0;
  std::optional<SimTime> last_poll_at_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::vector<LinkReading> sweep_scratch_;  // reused across sweeps
};

}  // namespace vod::snmp
