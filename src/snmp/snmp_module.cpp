#include "snmp/snmp_module.h"

#include <algorithm>
#include <stdexcept>

#include "common/contract.h"
#include "obs/trace.h"

namespace vod::snmp {

SnmpModule::SnmpModule(sim::Simulation& sim, net::FluidNetwork& network,
                       db::LimitedAccessView view, Duration interval)
    : sim_(sim), network_(network), view_(view), interval_(interval) {
  require(!(interval_.seconds() <= 0.0),
          "SnmpModule: interval must be positive");
}

void SnmpModule::start() {
  if (!task_) {
    task_ = std::make_unique<sim::PeriodicTask>(
        sim_, interval_, [this](SimTime now) { sample(now); });
  }
  task_->start();
}

void SnmpModule::stop() {
  if (task_) task_->stop();
}

void SnmpModule::poll_now(SimTime now) { sample(now); }

void SnmpModule::sample(SimTime now) {
  if (network_.time() < now) network_.set_time(now);
  const net::Topology& topology = network_.topology();
  obs::TraceRecorder* tr = obs::trace_sink();
  if (tr != nullptr) {
    tr->begin(obs::Subsystem::kSnmp, "snmp.sweep",
              {{"links", obs::num(static_cast<std::uint64_t>(
                   topology.link_count()))}});
  }
  for (const net::LinkInfo& info : topology.links()) {
    // One index walk per link: utilization is derived from the same `used`
    // figure (the exact arithmetic FluidNetwork::utilization performs)
    // instead of re-summing the link's flows.
    const Mbps used = count_vod_flows_ ? network_.used_bandwidth(info.id)
                                       : network_.background(info.id);
    const double utilization = std::clamp(used / info.capacity, 0.0, 1.0);
    view_.update_link_stats(info.id, used, utilization, now);
    view_.set_link_online(info.id, network_.link_up(info.id));
  }
  ++poll_count_;
  last_poll_at_ = now;
  if (tr != nullptr) tr->end(obs::Subsystem::kSnmp, "snmp.sweep");
}

}  // namespace vod::snmp
