#include "snmp/snmp_module.h"

#include <algorithm>
#include <stdexcept>

#include "common/contract.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace vod::snmp {

SnmpModule::SnmpModule(sim::Simulation& sim, net::FluidNetwork& network,
                       db::LimitedAccessView view, Duration interval)
    : sim_(sim), network_(network), view_(view), interval_(interval) {
  require(!(interval_.seconds() <= 0.0),
          "SnmpModule: interval must be positive");
}

void SnmpModule::start() {
  if (!task_) {
    task_ = std::make_unique<sim::PeriodicTask>(
        sim_, interval_, [this](SimTime now) { sample(now); });
  }
  task_->start();
}

void SnmpModule::stop() {
  if (task_) task_->stop();
}

void SnmpModule::poll_now(SimTime now) { sample(now); }

void SnmpModule::sample(SimTime now) {
  if (network_.time() < now) network_.set_time(now);
  const net::Topology& topology = network_.topology();
  obs::TraceRecorder* tr = obs::trace_sink();
  if (tr != nullptr) {
    tr->begin(obs::Subsystem::kSnmp, "snmp.sweep",
              {{"links", obs::num(static_cast<std::uint64_t>(
                   topology.link_count()))}});
  }
  const std::vector<net::LinkInfo>& links = topology.links();
  // Warm the network's per-instant background cache serially, in link
  // order: the parallel phase below must only read it (the lazy fill is a
  // mutable cache — the exact hazard common/parallel.h's contract names),
  // and warming in link order keeps the traffic-query ledger identical to
  // the one-pass serial sweep.
  for (const net::LinkInfo& info : links) (void)network_.background(info.id);
  sweep_scratch_.resize(links.size());
  // Parallel phase: each chunk computes readings for its own links — one
  // index walk per link; utilization derives from the same `used` figure
  // (the exact arithmetic FluidNetwork::utilization performs) instead of
  // re-summing the link's flows.  All inputs are const reads now that the
  // background cache is warm.
  // vodlint: parallel-region
  parallel_for(links.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const net::LinkInfo& info = links[i];
      const Mbps used = count_vod_flows_ ? network_.used_bandwidth(info.id)
                                         : network_.background(info.id);
      sweep_scratch_[i].used = used;
      sweep_scratch_[i].utilization =
          std::clamp(used / info.capacity, 0.0, 1.0);
      sweep_scratch_[i].online = network_.link_up(info.id);
    }
  });
  // Serial merge in link order: database writes are effects, applied after
  // the barrier exactly as the serial sweep interleaved them.
  for (std::size_t i = 0; i < links.size(); ++i) {
    view_.update_link_stats(links[i].id, sweep_scratch_[i].used,
                            sweep_scratch_[i].utilization, now);
    view_.set_link_online(links[i].id, sweep_scratch_[i].online);
  }
  ++poll_count_;
  last_poll_at_ = now;
  if (tr != nullptr) tr->end(obs::Subsystem::kSnmp, "snmp.sweep");
}

}  // namespace vod::snmp
